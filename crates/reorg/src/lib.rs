//! Data reorganization graphs and stream-shift placement policies.
//!
//! This crate implements §3 of Eichenberger, Wu and O'Brien (PLDI 2004):
//! the *data reorganization phase* of simdization. A loop is first
//! simdized as if the target had no alignment constraints, producing one
//! expression tree per statement; this crate then inserts explicit data
//! reordering operations (`vshiftstream` nodes) so that the **stream
//! offset** of every node satisfies the paper's validity constraints:
//!
//! * **(C.2)** the stream stored by `vstore(addr(i), src)` has offset
//!   `addr(0) mod V`;
//! * **(C.3)** all inputs of a `vop` have matching stream offsets.
//!
//! The result is a [`ReorgGraph`] — the interface between the (mostly
//! architecture-independent) reorganization phase and the SIMD code
//! generation phase in `simdize-codegen`.
//!
//! Five [`Policy`] choices control where shifts are placed: the
//! paper's four greedy rules (§3.4) — [`Policy::Zero`],
//! [`Policy::Eager`], [`Policy::Lazy`] and [`Policy::Dominant`] — plus
//! [`Policy::Optimal`], which proves the per-statement minimum by
//! exact search (tree DP cross-checked by branch-and-bound; see
//! [`optimal_shift_counts`]). Zero-shift is the only policy applicable
//! when alignments are unknown until run time (§4.4).
//!
//! [`reassociate`] implements the *common offset reassociation*
//! optimization of §5.5, regrouping associative chains by stream offset
//! so that lazy/dominant placement reaches the analytic minimum number of
//! shifts.
//!
//! # Example
//!
//! ```
//! use simdize_ir::{parse_program, VectorShape};
//! use simdize_reorg::{ReorgGraph, Policy};
//!
//! // Figure 1: stream offsets are 12 (store), 4 and 8 (loads).
//! let p = parse_program(
//!     "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
//!      for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
//! )?;
//! let graph = ReorgGraph::build(&p, VectorShape::V16)?;
//! let zero = graph.with_policy(Policy::Zero)?;
//! let lazy = graph.with_policy(Policy::Lazy)?;
//! assert_eq!(zero.shift_count(), 3);   // two loads + the store
//! assert_eq!(lazy.shift_count(), 2);
//! zero.validate()?;
//! lazy.validate()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod applicability;
mod dot;
mod error;
mod graph;
mod offset;
mod optimal;
mod policy;
mod reassoc;
mod stats;
mod trace;

pub use applicability::{simdizable_aligned_only, simdizable_by_peeling};
pub use dot::to_dot;
pub use error::{BuildGraphError, PolicyError, ValidateGraphError};
pub use graph::{NodeId, RNode, ReorgGraph, VOpKind};
pub use offset::{shift_amount, Offset, ShiftDir};
pub use optimal::{branch_and_bound_shift_counts, optimal_shift_counts, OptimalStmt};
pub use policy::Policy;
pub use reassoc::reassociate;
pub use stats::{distinct_alignments, GraphStats};
pub use trace::{Constraint, PlacementEvent, PlacementTrace};
