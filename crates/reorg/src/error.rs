//! Errors of the data reorganization phase.

use crate::graph::NodeId;
use crate::offset::Offset;
use crate::policy::Policy;
use simdize_ir::{ScalarType, VectorShape};
use std::error::Error;
use std::fmt;

/// Failure to build a data reorganization graph from a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildGraphError {
    /// One element does not fit in a vector register.
    ElementTooWide {
        /// The loop's element type.
        elem: ScalarType,
        /// The target shape.
        shape: VectorShape,
    },
    /// The loop contains a reference with stride greater than one; the
    /// paper's stream framework requires stride-one references (§4.1).
    /// Use the `simdize-stride` extension generator for such loops.
    NonUnitStride {
        /// The offending stride.
        stride: u32,
    },
    /// The blocking factor `B = V / D` is 1; there is nothing to
    /// vectorize.
    NoParallelism {
        /// The loop's element type.
        elem: ScalarType,
        /// The target shape.
        shape: VectorShape,
    },
}

impl fmt::Display for BuildGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildGraphError::ElementTooWide { elem, shape } => write!(
                f,
                "element type {elem} ({} bytes) is wider than a {shape} register",
                elem.size()
            ),
            BuildGraphError::NonUnitStride { stride } => write!(
                f,
                "stride-{stride} references are outside the paper's stream framework; \
                 use the strided extension generator"
            ),
            BuildGraphError::NoParallelism { elem, shape } => write!(
                f,
                "blocking factor for {elem} on {shape} is 1; simdization is pointless"
            ),
        }
    }
}

impl Error for BuildGraphError {}

/// Failure to apply a shift-placement policy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyError {
    /// The eager, lazy and dominant policies require every alignment in
    /// the loop to be known at compile time (paper §3.4, §4.4).
    NeedsCompileTimeAlignment {
        /// The policy that was requested.
        policy: Policy,
    },
    /// The graph already contains shifts placed by a policy.
    AlreadyPlaced {
        /// The policy that placed the existing shifts.
        existing: Policy,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::NeedsCompileTimeAlignment { policy } => write!(
                f,
                "the {policy} policy requires compile-time alignments; \
                 use the zero-shift policy for runtime alignments"
            ),
            PolicyError::AlreadyPlaced { existing } => write!(
                f,
                "shifts were already placed by the {existing} policy; \
                 apply policies to the unshifted graph"
            ),
        }
    }
}

impl Error for PolicyError {}

/// A violation of the graph validity constraints (C.2)/(C.3).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateGraphError {
    /// Constraint (C.3): two operands of a `vop` have conflicting stream
    /// offsets.
    OperandMismatch {
        /// The offending `vop` node.
        node: NodeId,
        /// Offset accumulated from earlier operands.
        left: Offset,
        /// The conflicting operand offset.
        right: Offset,
    },
    /// Constraint (C.2): a store's source stream offset does not match
    /// the store address alignment.
    StoreMismatch {
        /// The offending `vstore` node.
        node: NodeId,
        /// The offset required by the store address.
        required: Offset,
        /// The offset the source stream actually has.
        found: Offset,
    },
    /// A `vop` whose operands sit at a non-natural stream offset:
    /// lane-wise arithmetic would mix bytes of adjacent elements.
    UnnaturalOperands {
        /// The offending `vop` node.
        node: NodeId,
        /// The (non-natural) operand offset.
        offset: Offset,
    },
    /// A `vshiftstream` whose direction cannot be determined at compile
    /// time (paper §4.4 requires a compile-time-decidable direction).
    UndecidableShift {
        /// The offending shift node.
        node: NodeId,
        /// Source stream offset.
        from: Offset,
        /// Target stream offset.
        to: Offset,
    },
}

impl fmt::Display for ValidateGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateGraphError::OperandMismatch { node, left, right } => write!(
                f,
                "constraint C.3 violated at {node}: operand stream offsets {left} and {right} differ"
            ),
            ValidateGraphError::StoreMismatch {
                node,
                required,
                found,
            } => write!(
                f,
                "constraint C.2 violated at {node}: store requires offset {required}, \
                 source stream has {found}"
            ),
            ValidateGraphError::UnnaturalOperands { node, offset } => write!(
                f,
                "operands of {node} sit at non-natural stream offset {offset}; lane \
                 arithmetic would straddle element boundaries"
            ),
            ValidateGraphError::UndecidableShift { node, from, to } => write!(
                f,
                "shift direction at {node} (from {from} to {to}) is not decidable at compile time"
            ),
        }
    }
}

impl Error for ValidateGraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        let e = ValidateGraphError::OperandMismatch {
            node: NodeId(3),
            left: Offset::Byte(4),
            right: Offset::Byte(8),
        };
        assert!(e.to_string().contains("C.3"));
        let e = PolicyError::NeedsCompileTimeAlignment {
            policy: Policy::Lazy,
        };
        assert!(e.to_string().contains("lazy"));
        let e = BuildGraphError::NoParallelism {
            elem: ScalarType::I64,
            shape: VectorShape::V8,
        };
        assert!(e.to_string().contains("blocking factor"));
    }
}
