//! Applicability analysis for the prior-art baselines the paper's
//! introduction argues against.
//!
//! Before this paper, the two deployed strategies were:
//!
//! * **aligned-only** simdization: vectorize a loop only if *every*
//!   memory reference is aligned;
//! * **loop peeling** ([3, 4]): peel scalar iterations until references
//!   become aligned — which "can only make at most one reference in the
//!   loop aligned" unless all references are *relatively aligned*
//!   (share one misalignment), in which case it equals the eager-shift
//!   policy with zero shifts.
//!
//! These predicates power the applicability study in the evaluation
//! harness: the paper's scheme simdizes every loop in this crate's
//! model, the baselines only slices of the space.

use crate::offset::Offset;
use simdize_ir::{LoopProgram, VectorShape};

/// Whether the *aligned-only* baseline can simdize `program`: every
/// load and store must have compile-time stream offset 0.
pub fn simdizable_aligned_only(program: &LoopProgram, shape: VectorShape) -> bool {
    all_offsets(program, shape)
        .map(|offs| offs.iter().all(|&o| o == Offset::Byte(0)))
        .unwrap_or(false)
}

/// Whether the *loop peeling* baseline can simdize `program`: all
/// references must share one compile-time misalignment, so that peeling
/// `(V − offset) / D mod B` scalar iterations aligns everything at
/// once. (Paper §6: "the loop peeling scheme is equivalent to the
/// eager-shift policy with the restriction that all memory references
/// in the loop must have the same misalignment.")
pub fn simdizable_by_peeling(program: &LoopProgram, shape: VectorShape) -> bool {
    all_offsets(program, shape)
        .map(|offs| {
            let mut distinct = offs.clone();
            distinct.sort_by_key(|o| o.known());
            distinct.dedup();
            distinct.len() <= 1
        })
        .unwrap_or(false)
}

/// All stream offsets in the loop (loads and stores), or `None` when
/// any is unknown at compile time (neither baseline handles runtime
/// alignments).
fn all_offsets(program: &LoopProgram, shape: VectorShape) -> Option<Vec<Offset>> {
    let mut out = Vec::new();
    let mut runtime = false;
    if program.all_refs().iter().any(|r| !r.is_unit_stride()) {
        return None;
    }
    for stmt in program.stmts() {
        stmt.rhs
            .visit_loads(&mut |r| match Offset::of_ref(r, program, shape) {
                o @ Offset::Byte(_) => out.push(o),
                _ => runtime = true,
            });
        match Offset::of_ref(stmt.target, program, shape) {
            o @ Offset::Byte(_) => out.push(o),
            _ => runtime = true,
        }
    }
    if runtime {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::parse_program;

    #[test]
    fn fully_aligned_loop_passes_both() {
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; }
             for i in 0..32 { a[i] = b[i+4]; }",
        )
        .unwrap();
        assert!(simdizable_aligned_only(&p, VectorShape::V16));
        assert!(simdizable_by_peeling(&p, VectorShape::V16));
    }

    #[test]
    fn relatively_aligned_loop_only_peels() {
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; }
             for i in 0..32 { a[i+1] = b[i+5]; }",
        )
        .unwrap();
        assert!(!simdizable_aligned_only(&p, VectorShape::V16));
        assert!(simdizable_by_peeling(&p, VectorShape::V16));
    }

    #[test]
    fn figure_1_defeats_both_baselines() {
        // The paper's point: no peeling can align more than one of the
        // three references.
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
        )
        .unwrap();
        assert!(!simdizable_aligned_only(&p, VectorShape::V16));
        assert!(!simdizable_by_peeling(&p, VectorShape::V16));
    }

    #[test]
    fn runtime_alignment_defeats_both() {
        let p = parse_program(
            "arrays { a: i32[64] @ ?; b: i32[64] @ ?; }
             for i in 0..32 { a[i] = b[i]; }",
        )
        .unwrap();
        assert!(!simdizable_aligned_only(&p, VectorShape::V16));
        assert!(!simdizable_by_peeling(&p, VectorShape::V16));
    }
}
