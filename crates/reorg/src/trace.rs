//! Decision traces for stream-shift placement (the explainability
//! layer's view of §3.4).
//!
//! [`crate::ReorgGraph::with_policy_traced`] records every decision the
//! shift-placement policy makes — stream offsets as they are computed,
//! each (C.2)/(C.3) constraint instantiation, and each `vshiftstream`
//! inserted or elided together with the policy rule that fired — as a
//! flat sequence of [`PlacementEvent`]s. Node ids in the events refer
//! to the *placed* graph that `with_policy_traced` returns, so a
//! consumer can link decisions to graph nodes and, downstream, to the
//! generated instructions (see the `simdize-explain` crate).

use crate::graph::NodeId;
use crate::offset::Offset;
use std::fmt;

/// Which of the paper's §3.3 validity constraints a
/// [`PlacementEvent::ConstraintChecked`] event instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// (C.2): the stream consumed by `vstore(addr(i), src)` must have
    /// stream offset `addr(0) mod V`.
    C2,
    /// (C.3): all inputs of a `vop` must have matching stream offsets.
    C3,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::C2 => f.write_str("C.2"),
            Constraint::C3 => f.write_str("C.3"),
        }
    }
}

/// One decision made while placing stream shifts.
///
/// Every event carries the statement index it belongs to; node ids
/// refer to the placed graph returned by
/// [`crate::ReorgGraph::with_policy_traced`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementEvent {
    /// The stream offset of a leaf (load or splat) or of the store was
    /// computed from the array declarations (paper eq. 1).
    OffsetComputed {
        /// Statement index.
        stmt: usize,
        /// The node in the placed graph.
        node: NodeId,
        /// A human-readable description (`vload(b[i+1])`, `vstore(a[i+3])`, ...).
        desc: String,
        /// The computed stream offset.
        offset: Offset,
    },
    /// The dominant policy chose its reconciliation target from the
    /// statement's offset histogram (§3.4, Figure 6b).
    DominantChosen {
        /// Statement index.
        stmt: usize,
        /// The chosen dominant offset.
        target: Offset,
        /// `(byte offset, stream count)` pairs, sorted by offset.
        histogram: Vec<(u32, usize)>,
        /// The statement's store offset (tie-break preference).
        store: Offset,
    },
    /// The optimal policy proved a statement's minimum shift count by
    /// exact search (tree DP over candidate natural offsets,
    /// cross-checkable by branch-and-bound; see `crate::optimal`).
    OptimalChosen {
        /// Statement index.
        stmt: usize,
        /// The shift count the search proved minimal for the statement
        /// (including any final store shift).
        shifts: usize,
        /// The §5.3 analytic per-statement lower bound (`n − 1` for `n`
        /// distinct alignments).
        lower_bound: usize,
        /// The candidate natural offsets the search ranged over.
        candidates: Vec<u32>,
        /// The statement's store offset.
        store: Offset,
    },
    /// A validity constraint was instantiated and checked.
    ConstraintChecked {
        /// Statement index.
        stmt: usize,
        /// Which constraint.
        constraint: Constraint,
        /// The node the constraint applies to (a `vop` for C.3, the
        /// store for C.2).
        node: NodeId,
        /// The offset the constraint requires.
        required: Offset,
        /// The offset actually found on the inputs.
        found: Offset,
        /// Whether the constraint held without inserting a shift.
        satisfied: bool,
    },
    /// A `vshiftstream` node was inserted.
    ShiftInserted {
        /// Statement index.
        stmt: usize,
        /// The new shift node in the placed graph.
        node: NodeId,
        /// The stream being shifted.
        src: NodeId,
        /// Source stream offset.
        from: Offset,
        /// Target stream offset.
        to: Offset,
        /// The policy rule that fired, in prose.
        rule: String,
    },
    /// A shift was provably unnecessary and elided.
    ShiftElided {
        /// Statement index.
        stmt: usize,
        /// The node whose stream needed no movement.
        node: NodeId,
        /// The (already matching) stream offset.
        offset: Offset,
        /// Why no shift was needed, in prose.
        rule: String,
    },
}

impl PlacementEvent {
    /// The statement this event belongs to.
    pub fn stmt(&self) -> usize {
        match self {
            PlacementEvent::OffsetComputed { stmt, .. }
            | PlacementEvent::DominantChosen { stmt, .. }
            | PlacementEvent::OptimalChosen { stmt, .. }
            | PlacementEvent::ConstraintChecked { stmt, .. }
            | PlacementEvent::ShiftInserted { stmt, .. }
            | PlacementEvent::ShiftElided { stmt, .. } => *stmt,
        }
    }

    /// The placed-graph node this event is about, if any.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            PlacementEvent::OffsetComputed { node, .. }
            | PlacementEvent::ConstraintChecked { node, .. }
            | PlacementEvent::ShiftInserted { node, .. }
            | PlacementEvent::ShiftElided { node, .. } => Some(*node),
            PlacementEvent::DominantChosen { .. } | PlacementEvent::OptimalChosen { .. } => None,
        }
    }
}

impl fmt::Display for PlacementEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementEvent::OffsetComputed {
                stmt,
                node,
                desc,
                offset,
            } => write!(f, "stmt {stmt}: {node} {desc} has stream offset {offset}"),
            PlacementEvent::DominantChosen {
                stmt,
                target,
                histogram,
                store,
            } => {
                let hist: Vec<String> = histogram
                    .iter()
                    .map(|(b, n)| format!("{b}\u{d7}{n}"))
                    .collect();
                write!(
                    f,
                    "stmt {stmt}: dominant offset {target} chosen from {{{}}} (store @{store})",
                    hist.join(", ")
                )
            }
            PlacementEvent::OptimalChosen {
                stmt,
                shifts,
                lower_bound,
                candidates,
                store,
            } => {
                let cands: Vec<String> = candidates.iter().map(u32::to_string).collect();
                write!(
                    f,
                    "stmt {stmt}: optimal placement proved minimal: {shifts} shift(s) over \
                     candidate offsets {{{}}} (\u{a7}5.3 bound {lower_bound}, store @{store})",
                    cands.join(", ")
                )
            }
            PlacementEvent::ConstraintChecked {
                stmt,
                constraint,
                node,
                required,
                found,
                satisfied,
            } => write!(
                f,
                "stmt {stmt}: ({constraint}) at {node}: requires {required}, found {found} — {}",
                if *satisfied { "satisfied" } else { "violated" }
            ),
            PlacementEvent::ShiftInserted {
                stmt,
                node,
                src,
                from,
                to,
                rule,
            } => write!(
                f,
                "stmt {stmt}: {node} = vshiftstream({src}, {from} \u{2192} {to}): {rule}"
            ),
            PlacementEvent::ShiftElided {
                stmt,
                node,
                offset,
                rule,
            } => write!(f, "stmt {stmt}: no shift at {node} (offset {offset}): {rule}"),
        }
    }
}

/// The ordered decision record of one
/// [`crate::ReorgGraph::with_policy_traced`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementTrace {
    /// The events, in the order the decisions were made.
    pub events: Vec<PlacementEvent>,
}

impl PlacementTrace {
    /// An empty trace.
    pub fn new() -> PlacementTrace {
        PlacementTrace::default()
    }

    /// Number of [`PlacementEvent::ShiftInserted`] events — equals the
    /// placed graph's [`crate::ReorgGraph::shift_count`].
    pub fn shifts_inserted(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, PlacementEvent::ShiftInserted { .. }))
            .count()
    }

    /// Events belonging to statement `stmt`, in order.
    pub fn for_stmt(&self, stmt: usize) -> impl Iterator<Item = &PlacementEvent> {
        self.events.iter().filter(move |e| e.stmt() == stmt)
    }
}
