//! Performance floor: the compiled kernel must beat the interpreter by
//! at least 5× on a 1M-element loop. Timing assertions are only
//! meaningful on optimized builds, so the whole test compiles away in
//! debug mode (`cargo test --release` / `scripts/ci.sh` exercise it).
#![cfg(not(debug_assertions))]

use simdize_codegen::{generate, CodegenOptions, ReuseMode};
use simdize_engine::CompiledKernel;
use simdize_ir::{parse_program, VectorShape};
use simdize_reorg::{Policy, ReorgGraph};
use simdize_vm::{run_simd, MemoryImage, RunInput};
use std::time::Instant;

#[test]
fn compiled_kernel_is_at_least_5x_faster_than_interpreter() {
    let p = parse_program(
        "arrays { a: i32[1000016] @ 0; b: i32[1000016] @ 4; c: i32[1000016] @ 8; }
         for i in 0..1000000 { a[i+3] = b[i+1] + c[i+2]; }",
    )
    .unwrap();
    let g = ReorgGraph::build(&p, VectorShape::V16)
        .unwrap()
        .with_policy(Policy::Zero)
        .unwrap();
    let prog = generate(
        &g,
        &CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline),
    )
    .unwrap();
    let input = RunInput::with_ub(1_000_000);
    let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 2004);
    let kernel = CompiledKernel::compile(&prog, &img, &input).unwrap();

    // Warm caches once, then time single full passes of each executor.
    kernel.run(&mut img).unwrap();
    let t0 = Instant::now();
    kernel.run(&mut img).unwrap();
    let engine_t = t0.elapsed();
    let t1 = Instant::now();
    run_simd(&prog, &mut img, &input).unwrap();
    let interp_t = t1.elapsed();

    let ratio = interp_t.as_secs_f64() / engine_t.as_secs_f64();
    assert!(
        ratio >= 5.0,
        "compiled kernel only {ratio:.1}x faster than the interpreter \
         (engine {engine_t:?}, interp {interp_t:?}; need >= 5x)"
    );
}
