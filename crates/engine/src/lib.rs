//! A compiled native execution engine for simdized loops.
//!
//! The interpreter in `simdize-vm` is the *reference semantics*: it
//! walks [`simdize_codegen::SimdProgram`] instruction by instruction,
//! re-evaluating scalar expressions, re-deriving addresses and
//! allocating a fresh `Vec<u8>` per register write. That is exactly
//! right for an oracle and far too slow for large sweeps.
//!
//! This crate adds the second execution tier, split in two phases so
//! repeated work is shared. [`PredecodedKernel`] does everything that
//! depends only on the program (shape checks, permutation validation,
//! constant splats, address reduction); [`PredecodedKernel::bake`]
//! (or the one-shot [`CompiledKernel::compile`]) finishes the job per
//! (memory layout, runtime input) pair —
//!
//! * every scalar expression (alignment masks, shift amounts, splice
//!   points, runtime trip bounds) evaluated exactly once,
//! * every address folded to a baked `(start, step)` byte-offset pair
//!   with chunk truncation pre-applied,
//! * guarded blocks resolved and flattened,
//! * all memory streams bounds-checked and registers checked
//!   defined-before-use up front,
//! * dynamic instruction counts computed analytically —
//!
//! and then executes prologue, steady state and epilogue as
//! straight-line slices of a flat `[u8; 16]`-register machine in a
//! tight dispatch loop. On top of the baked trace a fusion pass
//! (on by default, see [`FusionStats`]) rewrites `vload`+`vshiftpair`
//! chains into single fused loads, folds known-operand arithmetic into
//! splat/immediate forms, hoists loop invariants into once-run headers
//! and deletes dead ops — shrinking the steady-state op count without
//! changing a stored byte or a reported stat ([`RunStats`] are fixed
//! before fusion). The engine is byte-for-byte and stat-for-stat
//! identical to [`simdize_vm::run_simd`] (the differential tests
//! enforce it, fused and unfused) while running orders of magnitude
//! faster. The interpreter tiers stay `unsafe`-free — their hot-loop
//! safety comes from compile-time validation — while the [`native`]
//! intrinsics backend confines its `unsafe` to two audited
//! per-architecture modules (`x86`, `neon`) behind the crate-wide
//! `#![deny(unsafe_code)]` lint.
//!
//! The [`native`] module adds the third tier: [`SimdKernel`] lowers a
//! baked (and trace-fused) plan to real `std::arch` intrinsics —
//! SSE2 always on x86_64, AVX2 by runtime feature detection, NEON on
//! aarch64, and a portable scalar tier everywhere — selected once per
//! kernel by [`IsaLevel::detect`] and replayed as straight-line SIMD.
//!
//! The [`batch`] module scales this to sweeps: many (program, seed)
//! jobs distributed over scoped worker threads, each job compiled,
//! executed and differentially verified, with per-job [`RunStats`].
//! Sweeps pre-decode each distinct program once ([`SweepOptions`]) and
//! reuse per-worker scratch images across jobs. Baked kernels live in
//! a sharded, LRU-bounded [`cache::KernelCache`] keyed by *(program
//! fingerprint, runtime input, memory layout)* — shared across workers
//! within a sweep and, through [`batch::run_sweep_shared`], across
//! sweeps entirely (the `simdize serve` server keeps one process-wide
//! cache for every request it handles).
//!
//! # Example
//!
//! ```
//! use simdize_ir::{parse_program, VectorShape};
//! use simdize_reorg::{Policy, ReorgGraph};
//! use simdize_codegen::{generate, CodegenOptions};
//! use simdize_vm::{MemoryImage, RunInput};
//! use simdize_engine::CompiledKernel;
//!
//! let p = parse_program(
//!     "arrays { a: i32[128] @ 0; b: i32[128] @ 4; }
//!      for i in 0..100 { a[i] = b[i+1]; }",
//! )?;
//! let g = ReorgGraph::build(&p, VectorShape::V16)?.with_policy(Policy::Zero)?;
//! let prog = generate(&g, &CodegenOptions::default())?;
//! let mut image = MemoryImage::with_seed(&p, VectorShape::V16, 7);
//! let kernel = CompiledKernel::compile(&prog, &image, &RunInput::with_ub(100))?;
//! let stats = kernel.run(&mut image)?;
//! assert!(stats.total() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`RunStats`]: simdize_vm::RunStats

// `deny`, not `forbid`: the two per-architecture intrinsics modules
// under `native/` opt back in with `#[allow(unsafe_code)]`; everything
// else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
mod kernel;
mod lanes;
pub mod native;
mod trace;

pub use batch::{
    run_sweep, run_sweep_collect, run_sweep_shared, run_sweep_with, CacheMode, SweepBackend,
    SweepJob, SweepOptions, SweepOutcome, SweepStats,
};
pub use cache::{
    program_fingerprint, CacheKey, CacheStats, KernelBackend, KernelCache, LayoutSig, Lookup,
};
pub use kernel::{CompiledKernel, KernelOptions, NativeEngine, PredecodedKernel};
pub use native::{IsaLevel, SimdEngine, SimdKernel};
pub use trace::{FusionEvent, FusionEventKind, FusionStats};
