//! Kernel compilation: one `SimdProgram` + one memory layout + one set
//! of runtime inputs, lowered once into straight-line instruction
//! slices that a tight dispatch loop can execute with no per-iteration
//! decisions left.
//!
//! Compilation is split into two phases so sweeps can share work:
//!
//! * [`PredecodedKernel::new`] does everything that depends only on the
//!   *program*: V16 shape check, permutation validation, constant-splat
//!   materialization, address reduction to per-array `(byte offset,
//!   byte scale)` pairs, register-file sizing. One pre-decode is shared
//!   across every seed of a sweep.
//! * [`PredecodedKernel::bake`] does the cheap per-(layout, input)
//!   remainder: every scalar expression (alignment masks, shift
//!   amounts, splice points, the runtime upper bound) is evaluated
//!   against the image; every address becomes a baked `(start, step)`
//!   byte pair — truncation to the enclosing chunk happens here, which
//!   is sound because a steady iteration advances every address by
//!   `scale · V` bytes, a multiple of the chunk size; guarded blocks
//!   are resolved (the conditions are loop invariant) and flattened;
//!   every access stream is bounds-checked first-and-last against the
//!   image's guarded ranges; registers are checked defined-before-use;
//!   dynamic instruction counts are computed analytically, charging the
//!   same costs as `simdize_vm::run_simd` charges dynamically.
//!
//! After baking, the [`trace`](crate::trace) pass (on by default)
//! fuses superinstructions, hoists loop invariants into per-loop
//! headers and strips dead ops — without changing a single stored byte
//! or stat, since [`RunStats`] are fixed before fusion runs.

use crate::lanes::{self, Reg};
use crate::trace::{self, FusionEvent, FusionStats};
use simdize_codegen::{SCond, SExpr, ScalarEnv, SimdProgram, VInst};
use simdize_ir::{ArrayId, BinOp, LoopProgram, ScalarType, UnOp, Value, VectorShape};
use simdize_vm::{
    run_scalar, runtime_expr_count, scalar_ideal_ops, ExecError, Executor, MemoryImage, RunInput,
    RunStats, CALL_OVERHEAD, LOOP_OVERHEAD_PER_ITERATION, RUNTIME_SETUP_PER_EXPR,
};
use simdize_telemetry as telemetry;
use std::fmt::Write as _;
use std::sync::Arc;

/// The one vector width the engine has kernels for.
pub(crate) const V: i64 = 16;

/// One pre-lowered engine instruction. Memory operands are raw byte
/// offsets into the image — `at = start + iteration · step` — with any
/// chunk truncation already applied; all scalar operands are folded.
/// `arr` identifies the accessed array so the trace pass can reason
/// about aliasing (array guarded regions never overlap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Op {
    Load { dst: u32, arr: u32, start: i64, step: i64 },
    /// A `vload` + `vshiftpair` pair fused by the trace pass into one
    /// shifted load. Executes exactly like `Load`; kept distinct so the
    /// trace listing and fusion telemetry can tell them apart.
    LoadFused { dst: u32, arr: u32, start: i64, step: i64 },
    Store { src: u32, arr: u32, start: i64, step: i64 },
    Shift { dst: u32, a: u32, b: u32, amt: u8 },
    Splice { dst: u32, a: u32, b: u32, point: u8 },
    Perm { dst: u32, a: u32, b: u32, pattern: [u8; 16] },
    Splat { dst: u32, bytes: Reg },
    Bin { dst: u32, op: BinOp, a: u32, b: u32 },
    /// A binop whose other operand the trace pass proved constant at
    /// bake time; the immediate rides in the instruction.
    BinSplat { dst: u32, op: BinOp, a: u32, imm: Reg, imm_left: bool },
    Un { dst: u32, op: UnOp, a: u32 },
    Copy { dst: u32, src: u32 },
}

/// The `ub ≤ 3B` guard resolved to the scalar path at compile time.
#[derive(Debug, Clone)]
struct FallbackPlan {
    source: Arc<LoopProgram>,
    ub: u64,
    params: Vec<i64>,
}

/// Knobs for [`PredecodedKernel::bake`].
///
/// The defaults match [`CompiledKernel::compile`]: trace fusion on,
/// disassembly text built. Sweeps turn the disassembly off (nobody
/// reads per-seed text); the differential fusion tests turn fusion off
/// to pin fused == unfused execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOptions {
    fuse: bool,
    disassembly: bool,
}

impl Default for KernelOptions {
    fn default() -> KernelOptions {
        KernelOptions {
            fuse: true,
            disassembly: true,
        }
    }
}

impl KernelOptions {
    /// The default options: fusion on, disassembly on.
    pub fn new() -> KernelOptions {
        KernelOptions::default()
    }

    /// Enables or disables the trace fusion pass.
    pub fn fuse(mut self, on: bool) -> KernelOptions {
        self.fuse = on;
        self
    }

    /// Enables or disables building the disassembly listing.
    pub fn disassembly(mut self, on: bool) -> KernelOptions {
        self.disassembly = on;
        self
    }
}

/// One program-level instruction after pre-decoding: registers are raw
/// indices, addresses are `(array, byte offset, byte scale)` triples,
/// permutation patterns are validated, constant splats materialized.
/// Everything left symbolic (`SExpr`/`SCond`) genuinely depends on the
/// memory layout or runtime input.
#[derive(Debug, Clone)]
enum PInst {
    LoadA { dst: u32, arr: u32, off: i64, scale: i64 },
    LoadU { dst: u32, arr: u32, off: i64, scale: i64 },
    StoreA { src: u32, arr: u32, off: i64, scale: i64 },
    StoreU { src: u32, arr: u32, off: i64, scale: i64 },
    Shift { dst: u32, a: u32, b: u32, amt: SExpr },
    Splice { dst: u32, a: u32, b: u32, point: SExpr },
    Perm { dst: u32, a: u32, b: u32, pattern: [u8; 16] },
    Splat { dst: u32, bytes: Reg, value: i64 },
    SplatParam { dst: u32, param: usize },
    Bin { dst: u32, op: BinOp, a: u32, b: u32 },
    Un { dst: u32, op: UnOp, a: u32 },
    Copy { dst: u32, src: u32 },
    Guarded { cond: SCond, body: Vec<PInst> },
}

/// The program-dependent half of kernel compilation, shared across
/// every memory layout and runtime input.
///
/// Build once per distinct `SimdProgram` with [`PredecodedKernel::new`],
/// then [`bake`](PredecodedKernel::bake) a [`CompiledKernel`] per
/// (image, input) pair. `engine::run_sweep` keys a cache of these on
/// program identity so a 64-seed sweep pre-decodes once, not 64 times.
#[derive(Debug, Clone)]
pub struct PredecodedKernel {
    source: Arc<LoopProgram>,
    elem: ScalarType,
    elem_size: i64,
    nregs: usize,
    narrays: usize,
    nparams: usize,
    trip_known: Option<u64>,
    guard_min_trip: u64,
    block: i64,
    lower_bound: i64,
    upper_bound: SExpr,
    runtime_exprs: u64,
    prologue: Vec<PInst>,
    pair: Option<Vec<PInst>>,
    body: Vec<PInst>,
    epilogue: Vec<PInst>,
}

/// A `SimdProgram` compiled for one memory layout and one set of
/// runtime inputs.
///
/// Compile once with [`CompiledKernel::compile`] (or pre-decode with
/// [`PredecodedKernel`] and [`bake`](PredecodedKernel::bake)), then
/// [`run`] against the image (or any image with the identical layout —
/// same bases, same length). The kernel's [`stats`] are computed at
/// compile time, *before* trace fusion, and are identical to what
/// [`simdize_vm::run_simd`] would count dynamically; the differential
/// tests enforce byte-for-byte and stat-for-stat equality with the
/// interpreter whether fusion is on or off.
///
/// [`run`]: CompiledKernel::run
/// [`stats`]: CompiledKernel::stats
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    // Section fields are crate-visible so the `native` lowering pass can
    // translate the baked plan without re-deriving it.
    pub(crate) prologue: Vec<Op>,
    pub(crate) pair_header: Vec<Op>,
    pub(crate) pair: Vec<Op>,
    pub(crate) pair_iters: i64,
    pub(crate) body_header: Vec<Op>,
    pub(crate) body: Vec<Op>,
    pub(crate) body_iters: i64,
    pub(crate) epilogue: Vec<Op>,
    pub(crate) nregs: usize,
    pub(crate) elem: ScalarType,
    shape: VectorShape,
    stats: RunStats,
    bases: Vec<u64>,
    image_len: usize,
    fallback: Option<FallbackPlan>,
    disassembly: String,
    fusion: FusionStats,
    fusion_events: Vec<FusionEvent>,
    fused: bool,
}

struct Env<'a> {
    ub: i64,
    image: &'a MemoryImage,
}

impl ScalarEnv for Env<'_> {
    fn ub(&self) -> i64 {
        self.ub
    }
    fn base_of(&self, array: ArrayId) -> u64 {
        self.image.base_of(array)
    }
    fn shape(&self) -> VectorShape {
        self.image.shape()
    }
}

/// Pre-decodes one instruction list (recursing into guards).
fn predecode(insts: &[VInst], elem_size: i64, elem: ScalarType, out: &mut Vec<PInst>) -> Result<(), ExecError> {
    let addr = |a: &simdize_codegen::Addr| (a.array.index() as u32, a.elem * elem_size, a.scale * elem_size);
    for inst in insts {
        match inst {
            VInst::LoadA { dst, addr: a } => {
                let (arr, off, scale) = addr(a);
                out.push(PInst::LoadA { dst: dst.index() as u32, arr, off, scale });
            }
            VInst::StoreA { addr: a, src } => {
                let (arr, off, scale) = addr(a);
                out.push(PInst::StoreA { src: src.index() as u32, arr, off, scale });
            }
            VInst::LoadU { dst, addr: a } => {
                let (arr, off, scale) = addr(a);
                out.push(PInst::LoadU { dst: dst.index() as u32, arr, off, scale });
            }
            VInst::StoreU { addr: a, src } => {
                let (arr, off, scale) = addr(a);
                out.push(PInst::StoreU { src: src.index() as u32, arr, off, scale });
            }
            VInst::ShiftPair { dst, a, b, amt } => out.push(PInst::Shift {
                dst: dst.index() as u32,
                a: a.index() as u32,
                b: b.index() as u32,
                amt: amt.clone(),
            }),
            VInst::Splice { dst, a, b, point } => out.push(PInst::Splice {
                dst: dst.index() as u32,
                a: a.index() as u32,
                b: b.index() as u32,
                point: point.clone(),
            }),
            VInst::Perm { dst, a, b, pattern } => {
                if pattern.len() != V as usize {
                    return Err(ExecError::BadShiftAmount {
                        amount: pattern.len() as i64,
                    });
                }
                let mut pat = [0u8; 16];
                for (t, &sel) in pattern.iter().enumerate() {
                    if sel as i64 >= 2 * V {
                        return Err(ExecError::BadShiftAmount { amount: sel as i64 });
                    }
                    pat[t] = sel;
                }
                out.push(PInst::Perm {
                    dst: dst.index() as u32,
                    a: a.index() as u32,
                    b: b.index() as u32,
                    pattern: pat,
                });
            }
            VInst::SplatConst { dst, value } => out.push(PInst::Splat {
                dst: dst.index() as u32,
                bytes: splat_bytes(elem, *value),
                value: *value,
            }),
            VInst::SplatParam { dst, param } => out.push(PInst::SplatParam {
                dst: dst.index() as u32,
                param: param.index(),
            }),
            VInst::Bin { dst, op, a, b } => out.push(PInst::Bin {
                dst: dst.index() as u32,
                op: *op,
                a: a.index() as u32,
                b: b.index() as u32,
            }),
            VInst::Un { dst, op, a } => out.push(PInst::Un {
                dst: dst.index() as u32,
                op: *op,
                a: a.index() as u32,
            }),
            VInst::Copy { dst, src } => out.push(PInst::Copy {
                dst: dst.index() as u32,
                src: src.index() as u32,
            }),
            VInst::Guarded { cond, body } => {
                let mut inner = Vec::new();
                predecode(body, elem_size, elem, &mut inner)?;
                out.push(PInst::Guarded {
                    cond: cond.clone(),
                    body: inner,
                });
            }
        }
    }
    Ok(())
}

/// `value` replicated into every `elem`-sized lane of a register.
fn splat_bytes(elem: ScalarType, value: i64) -> Reg {
    let bytes = Value::from_i64(elem, value).to_le_bytes();
    let d = elem.size();
    let mut out = [0u8; 16];
    for lane in 0..16 / d {
        out[lane * d..lane * d + d].copy_from_slice(&bytes);
    }
    out
}

/// Per-bake lowering state.
struct Baking<'a> {
    image: &'a MemoryImage,
    params: &'a [i64],
    ub: i64,
    elem: ScalarType,
    defined: Vec<bool>,
    dis: String,
    want_dis: bool,
}

impl Baking<'_> {
    fn eval(&self, e: &SExpr) -> i64 {
        e.eval(&Env {
            ub: self.ub,
            image: self.image,
        })
    }

    fn use_reg(&self, r: u32) -> Result<u32, ExecError> {
        if !self.defined[r as usize] {
            return Err(ExecError::UninitializedRegister { index: r as usize });
        }
        Ok(r)
    }

    fn def_reg(&mut self, r: u32) -> u32 {
        self.defined[r as usize] = true;
        r
    }

    /// Validates one memory stream: `iters` accesses starting at byte
    /// `start`, advancing by `step` bytes each, every one inside the
    /// array's guarded region.
    fn check_stream(&self, arr: u32, start: i64, step: i64, iters: i64) -> Result<(), ExecError> {
        let array = ArrayId::from_index(arr as usize);
        let (lo, hi) = self.image.guarded_range(array);
        let last = start + (iters - 1) * step;
        for at in [start, last] {
            if at < lo || at + V > hi {
                let base = self.image.base_of(array);
                return Err(ExecError::ChunkOutOfBounds {
                    array,
                    addr: at,
                    base,
                    byte_len: (hi - base as i64 - 4 * V) as u64,
                });
            }
        }
        Ok(())
    }

    fn dis_addr(&self, arr: u32, start: i64, step: i64) -> String {
        let array = ArrayId::from_index(arr as usize);
        let rel = start - self.image.base_of(array) as i64;
        if step != 0 {
            format!("{array}[base{rel:+}; {step:+}/iter]")
        } else {
            format!("{array}[base{rel:+}]")
        }
    }

    /// Bakes `insts` executed with the induction variable starting at
    /// `i0` and advancing by `step_i` elements for `iters` iterations,
    /// appending engine ops to `out` and class counts (per single
    /// iteration) to `counts`.
    fn bake_insts(
        &mut self,
        insts: &[PInst],
        i0: i64,
        step_i: i64,
        iters: i64,
        counts: &mut RunStats,
        out: &mut Vec<Op>,
    ) -> Result<(), ExecError> {
        for inst in insts {
            self.bake_inst(inst, i0, step_i, iters, counts, out)?;
        }
        Ok(())
    }

    fn bake_inst(
        &mut self,
        inst: &PInst,
        i0: i64,
        step_i: i64,
        iters: i64,
        counts: &mut RunStats,
        out: &mut Vec<Op>,
    ) -> Result<(), ExecError> {
        // Baked `(first byte address, bytes per iteration)` of one
        // pre-decoded address.
        let baked = |this: &Baking, arr: u32, off: i64, scale: i64| {
            let base = this.image.base_of(ArrayId::from_index(arr as usize)) as i64;
            (base + off + scale * i0, scale * step_i)
        };
        match *inst {
            PInst::LoadA { dst, arr, off, scale } => {
                let (a0, step) = baked(self, arr, off, scale);
                let start = a0 & !(V - 1);
                self.check_stream(arr, start, step, iters)?;
                let d = self.def_reg(dst);
                if self.want_dis {
                    let at = self.dis_addr(arr, start, step);
                    let _ = writeln!(self.dis, "  v{d} = load.chunk {at}");
                }
                out.push(Op::Load { dst: d, arr, start, step });
                counts.loads += 1;
            }
            PInst::StoreA { src, arr, off, scale } => {
                let (a0, step) = baked(self, arr, off, scale);
                let start = a0 & !(V - 1);
                self.check_stream(arr, start, step, iters)?;
                let s = self.use_reg(src)?;
                if self.want_dis {
                    let at = self.dis_addr(arr, start, step);
                    let _ = writeln!(self.dis, "  store.chunk {at}, v{s}");
                }
                out.push(Op::Store { src: s, arr, start, step });
                counts.stores += 1;
            }
            PInst::LoadU { dst, arr, off, scale } => {
                let (start, step) = baked(self, arr, off, scale);
                self.check_stream(arr, start, step, iters)?;
                let d = self.def_reg(dst);
                if self.want_dis {
                    let at = self.dis_addr(arr, start, step);
                    let _ = writeln!(self.dis, "  v{d} = load.exact {at}");
                }
                out.push(Op::Load { dst: d, arr, start, step });
                counts.unaligned_mem += 1;
            }
            PInst::StoreU { src, arr, off, scale } => {
                let (start, step) = baked(self, arr, off, scale);
                self.check_stream(arr, start, step, iters)?;
                let s = self.use_reg(src)?;
                if self.want_dis {
                    let at = self.dis_addr(arr, start, step);
                    let _ = writeln!(self.dis, "  store.exact {at}, v{s}");
                }
                out.push(Op::Store { src: s, arr, start, step });
                counts.unaligned_mem += 1;
            }
            PInst::Shift { dst, a, b, ref amt } => {
                let amount = self.eval(amt);
                if !(0..=V).contains(&amount) {
                    return Err(ExecError::BadShiftAmount { amount });
                }
                let (ra, rb) = (self.use_reg(a)?, self.use_reg(b)?);
                let d = self.def_reg(dst);
                if self.want_dis {
                    let _ = writeln!(self.dis, "  v{d} = shift(v{ra}, v{rb}, {amount})");
                }
                out.push(Op::Shift {
                    dst: d,
                    a: ra,
                    b: rb,
                    amt: amount as u8,
                });
                counts.shifts += 1;
            }
            PInst::Splice { dst, a, b, ref point } => {
                let p = self.eval(point);
                if !(0..=V).contains(&p) {
                    return Err(ExecError::BadSplicePoint { point: p });
                }
                let (ra, rb) = (self.use_reg(a)?, self.use_reg(b)?);
                let d = self.def_reg(dst);
                if self.want_dis {
                    let _ = writeln!(self.dis, "  v{d} = splice(v{ra}, v{rb}, {p})");
                }
                out.push(Op::Splice {
                    dst: d,
                    a: ra,
                    b: rb,
                    point: p as u8,
                });
                counts.splices += 1;
            }
            PInst::Perm { dst, a, b, pattern } => {
                let (ra, rb) = (self.use_reg(a)?, self.use_reg(b)?);
                let d = self.def_reg(dst);
                if self.want_dis {
                    let pat_str: Vec<String> = pattern.iter().map(|x| x.to_string()).collect();
                    let _ = writeln!(
                        self.dis,
                        "  v{d} = perm(v{ra}, v{rb}, [{}])",
                        pat_str.join(",")
                    );
                }
                out.push(Op::Perm {
                    dst: d,
                    a: ra,
                    b: rb,
                    pattern,
                });
                counts.shifts += 1; // permutes count as reorganization ops
            }
            PInst::Splat { dst, bytes, value } => {
                let d = self.def_reg(dst);
                if self.want_dis {
                    let _ = writeln!(self.dis, "  v{d} = splat({value})");
                }
                out.push(Op::Splat { dst: d, bytes });
                counts.splats += 1;
            }
            PInst::SplatParam { dst, param } => {
                let value = *self
                    .params
                    .get(param)
                    .ok_or(ExecError::MissingParam { index: param })?;
                let d = self.def_reg(dst);
                if self.want_dis {
                    let _ = writeln!(self.dis, "  v{d} = splat(p{param}={value})");
                }
                out.push(Op::Splat {
                    dst: d,
                    bytes: splat_bytes(self.elem, value),
                });
                counts.splats += 1;
            }
            PInst::Bin { dst, op, a, b } => {
                let (ra, rb) = (self.use_reg(a)?, self.use_reg(b)?);
                let d = self.def_reg(dst);
                if self.want_dis {
                    let _ = writeln!(
                        self.dis,
                        "  v{d} = {}(v{ra}, v{rb})",
                        format!("{op:?}").to_lowercase()
                    );
                }
                out.push(Op::Bin {
                    dst: d,
                    op,
                    a: ra,
                    b: rb,
                });
                counts.ops += 1;
            }
            PInst::Un { dst, op, a } => {
                let ra = self.use_reg(a)?;
                let d = self.def_reg(dst);
                if self.want_dis {
                    let _ = writeln!(
                        self.dis,
                        "  v{d} = {}(v{ra})",
                        format!("{op:?}").to_lowercase()
                    );
                }
                out.push(Op::Un { dst: d, op, a: ra });
                counts.ops += 1;
            }
            PInst::Copy { dst, src } => {
                let s = self.use_reg(src)?;
                let d = self.def_reg(dst);
                if self.want_dis {
                    let _ = writeln!(self.dis, "  v{d} = v{s}");
                }
                out.push(Op::Copy { dst: d, src: s });
                counts.copies += 1;
            }
            PInst::Guarded { ref cond, ref body } => {
                let taken = cond.eval(&Env {
                    ub: self.ub,
                    image: self.image,
                });
                if self.want_dis {
                    let _ = writeln!(
                        self.dis,
                        "  ; guard [{cond}] resolved {}",
                        if taken { "taken" } else { "skipped" }
                    );
                }
                if taken {
                    self.bake_insts(body, i0, step_i, iters, counts, out)?;
                }
            }
        }
        Ok(())
    }
}

impl PredecodedKernel {
    /// Pre-decodes `program`: the program-only half of compilation,
    /// reusable across every memory layout and runtime input.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Unsupported`] for vector shapes other than
    /// 16 bytes and [`ExecError::BadShiftAmount`] for malformed
    /// permutation patterns.
    pub fn new(program: &SimdProgram) -> Result<PredecodedKernel, ExecError> {
        let _span = telemetry::span("predecode");
        if program.shape().bytes() as i64 != V {
            return Err(ExecError::Unsupported {
                what: "vector shapes other than V16",
            });
        }
        let source = program.source();
        let elem = source.elem();
        let elem_size = elem.size() as i64;
        let mut prologue = Vec::new();
        let mut body = Vec::new();
        let mut epilogue = Vec::new();
        predecode(program.prologue(), elem_size, elem, &mut prologue)?;
        predecode(program.body(), elem_size, elem, &mut body)?;
        let pair = match program.body_pair() {
            Some(p) => {
                let mut v = Vec::new();
                predecode(p, elem_size, elem, &mut v)?;
                Some(v)
            }
            None => None,
        };
        predecode(program.epilogue(), elem_size, elem, &mut epilogue)?;
        Ok(PredecodedKernel {
            source: Arc::new(source.clone()),
            elem,
            elem_size,
            nregs: max_reg(program) + 1,
            narrays: source.arrays().len(),
            nparams: source.params().len(),
            trip_known: source.trip().known(),
            guard_min_trip: program.guard_min_trip(),
            block: program.block() as i64,
            lower_bound: program.lower_bound() as i64,
            upper_bound: program.upper_bound().clone(),
            runtime_exprs: runtime_expr_count(program) as u64,
            prologue,
            pair,
            body,
            epilogue,
        })
    }

    /// Number of arrays in the source loop (the cache keys a layout by
    /// this many base addresses).
    pub(crate) fn narrays(&self) -> usize {
        self.narrays
    }

    /// Bakes a [`CompiledKernel`] for the layout of `image` and the
    /// runtime inputs in `input`. The image's *contents* do not matter —
    /// only its array placement — so one kernel may run over many
    /// refills of the same layout.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Unsupported`] for non-V16 images,
    /// [`ExecError::TripMismatch`]/[`ExecError::MissingParam`] on
    /// inconsistent inputs, and any machine fault the interpreter would
    /// raise at runtime (out-of-bounds streams, bad shift amounts,
    /// reads of undefined registers) — those are detected here, before
    /// any memory is touched.
    pub fn bake(
        &self,
        image: &MemoryImage,
        input: &RunInput,
        opts: &KernelOptions,
    ) -> Result<CompiledKernel, ExecError> {
        let _span = telemetry::span("bake");
        if image.shape().bytes() as i64 != V {
            return Err(ExecError::Unsupported {
                what: "vector shapes other than V16",
            });
        }
        if input.params.len() < self.nparams {
            return Err(ExecError::MissingParam {
                index: input.params.len(),
            });
        }
        if let Some(declared) = self.trip_known {
            if input.ub != declared {
                return Err(ExecError::TripMismatch {
                    declared,
                    supplied: input.ub,
                });
            }
        }
        let ub = self.trip_known.unwrap_or(input.ub);
        let bases: Vec<u64> = (0..self.narrays)
            .map(|k| image.base_of(ArrayId::from_index(k)))
            .collect();

        let mut stats = RunStats {
            invocation_overhead: CALL_OVERHEAD,
            ..RunStats::default()
        };

        if ub <= self.guard_min_trip {
            // §4.4 guard: the kernel is the original scalar loop.
            stats.used_fallback = true;
            stats.scalar_fallback =
                scalar_ideal_ops(&self.source, ub) + ub * LOOP_OVERHEAD_PER_ITERATION;
            return Ok(CompiledKernel {
                prologue: Vec::new(),
                pair_header: Vec::new(),
                pair: Vec::new(),
                pair_iters: 0,
                body_header: Vec::new(),
                body: Vec::new(),
                body_iters: 0,
                epilogue: Vec::new(),
                nregs: 0,
                elem: self.elem,
                shape: image.shape(),
                stats,
                bases,
                image_len: image.bytes().len(),
                fallback: Some(FallbackPlan {
                    source: Arc::clone(&self.source),
                    ub,
                    params: input.params.clone(),
                }),
                disassembly: format!(
                    "; scalar fallback: ub = {ub} <= guard {}\n",
                    self.guard_min_trip
                ),
                fusion: FusionStats::default(),
                fusion_events: Vec::new(),
                fused: opts.fuse,
            });
        }

        stats.invocation_overhead += RUNTIME_SETUP_PER_EXPR * self.runtime_exprs;

        let b = self.block;
        let lb = self.lower_bound;
        let upper = self.upper_bound.eval(&Env {
            ub: ub as i64,
            image,
        });

        // Iteration counts, mirroring run_simd's loop structure exactly:
        //   if pair: while i + B < upper { i += 2B }   (steady ×2)
        //   while i < upper { i += B }                 (leftover)
        let pair_iters = if self.pair.is_some() && lb + b < upper {
            (upper - b - lb + 2 * b - 1).div_euclid(2 * b)
        } else {
            0
        };
        let i_after = lb + 2 * b * pair_iters;
        let body_iters = if i_after < upper {
            (upper - i_after + b - 1).div_euclid(b)
        } else {
            0
        };
        let i_final = i_after + b * body_iters;

        let mut bk = Baking {
            image,
            params: &input.params,
            ub: ub as i64,
            elem: self.elem,
            defined: vec![false; self.nregs],
            dis: String::new(),
            want_dis: opts.disassembly,
        };
        if bk.want_dis {
            let _ = writeln!(
                bk.dis,
                "; kernel: V={V} D={} B={b} ub={ub} upper={upper} regs={}",
                self.elem_size, self.nregs
            );
        }

        let mut prologue = Vec::new();
        let mut pair = Vec::new();
        let mut body = Vec::new();
        let mut epilogue = Vec::new();
        let mut pro_counts = RunStats::default();
        let mut pair_counts = RunStats::default();
        let mut body_counts = RunStats::default();
        let mut epi_counts = RunStats::default();

        if bk.want_dis {
            let _ = writeln!(bk.dis, "prologue (i = 0):");
        }
        bk.bake_insts(&self.prologue, 0, 0, 1, &mut pro_counts, &mut prologue)?;
        if pair_iters > 0 {
            if bk.want_dis {
                let _ = writeln!(bk.dis, "pair (i = {lb}, step {}, x{pair_iters}):", 2 * b);
            }
            bk.bake_insts(
                self.pair.as_ref().expect("pair_iters > 0 implies pair"),
                lb,
                2 * b,
                pair_iters,
                &mut pair_counts,
                &mut pair,
            )?;
        }
        if body_iters > 0 {
            if bk.want_dis {
                let _ = writeln!(bk.dis, "body (i = {i_after}, step {b}, x{body_iters}):");
            }
            bk.bake_insts(&self.body, i_after, b, body_iters, &mut body_counts, &mut body)?;
        }
        if bk.want_dis {
            let _ = writeln!(bk.dis, "epilogue (i = {i_final}):");
        }
        bk.bake_insts(&self.epilogue, i_final, 0, 1, &mut epi_counts, &mut epilogue)?;

        stats += pro_counts;
        stats += scaled(pair_counts, pair_iters as u64);
        stats += scaled(body_counts, body_iters as u64);
        stats += epi_counts;
        stats.steady_iterations = 2 * pair_iters as u64 + body_iters as u64;
        stats.loop_overhead =
            (pair_iters as u64 + body_iters as u64) * LOOP_OVERHEAD_PER_ITERATION;

        // Stats are final: fusion below only changes how the host
        // executes the trace, never what the machine model charges.
        let (pair_header, body_header, fusion, fusion_events) = if opts.fuse {
            let _span = telemetry::span("fuse");
            trace::optimize(trace::Sections {
                prologue: &mut prologue,
                pair: &mut pair,
                pair_iters,
                body: &mut body,
                body_iters,
                epilogue: &mut epilogue,
                nregs: self.nregs,
                elem: self.elem,
            })
        } else {
            (Vec::new(), Vec::new(), FusionStats::default(), Vec::new())
        };

        Ok(CompiledKernel {
            prologue,
            pair_header,
            pair,
            pair_iters,
            body_header,
            body,
            body_iters,
            epilogue,
            nregs: self.nregs,
            elem: self.elem,
            shape: image.shape(),
            stats,
            bases,
            image_len: image.bytes().len(),
            fallback: None,
            disassembly: bk.dis,
            fusion,
            fusion_events,
            fused: opts.fuse,
        })
    }
}

impl CompiledKernel {
    /// Compiles `program` for the layout of `image` and the runtime
    /// inputs in `input`: [`PredecodedKernel::new`] followed by
    /// [`PredecodedKernel::bake`] with default [`KernelOptions`]
    /// (fusion on, disassembly on). The image's *contents* do not
    /// matter — only its array placement — so one kernel may run over
    /// many refills of the same layout.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Unsupported`] for vector shapes other than
    /// 16 bytes, [`ExecError::TripMismatch`]/[`ExecError::MissingParam`]
    /// on inconsistent inputs, and any machine fault the interpreter
    /// would raise at runtime (out-of-bounds streams, bad shift
    /// amounts, reads of undefined registers) — those are detected here,
    /// before any memory is touched.
    pub fn compile(
        program: &SimdProgram,
        image: &MemoryImage,
        input: &RunInput,
    ) -> Result<CompiledKernel, ExecError> {
        PredecodedKernel::new(program)?.bake(image, input, &KernelOptions::default())
    }

    /// Whether `image` has the exact layout this kernel was baked for
    /// (shape, element type, total length, every array base).
    pub fn layout_matches(&self, image: &MemoryImage) -> bool {
        image.shape() == self.shape
            && image.elem() == self.elem
            && image.bytes().len() == self.image_len
            && (0..self.bases.len())
                .all(|k| image.base_of(ArrayId::from_index(k)) == self.bases[k])
    }

    /// Executes the kernel against `image`, which must have the layout
    /// the kernel was compiled for.
    ///
    /// The pre-lowered path is fault-free by construction (every access
    /// and register was validated at compile time), so the hot loop is
    /// pure dispatch. Returns the compile-time [`RunStats`].
    ///
    /// # Errors
    ///
    /// [`ExecError::Unsupported`] when `image` has a different layout
    /// than the compile-time one; scalar-fallback kernels propagate
    /// [`run_scalar`] faults.
    pub fn run(&self, image: &mut MemoryImage) -> Result<RunStats, ExecError> {
        let _span = telemetry::span("run");
        if !self.layout_matches(image) {
            return Err(ExecError::Unsupported {
                what: "a memory image with a different layout than compiled for",
            });
        }
        if let Some(fb) = &self.fallback {
            run_scalar(&fb.source, image, fb.ub, &fb.params)?;
            return Ok(self.stats);
        }
        let mut regs = vec![[0u8; 16]; self.nregs];
        let elem = self.elem;
        let mem = image.bytes_mut();
        exec_section(&self.prologue, 0, elem, &mut regs, mem);
        if self.pair_iters > 0 {
            exec_section(&self.pair_header, 0, elem, &mut regs, mem);
            for k in 0..self.pair_iters {
                exec_section(&self.pair, k, elem, &mut regs, mem);
            }
        }
        if self.body_iters > 0 {
            exec_section(&self.body_header, 0, elem, &mut regs, mem);
            for k in 0..self.body_iters {
                exec_section(&self.body, k, elem, &mut regs, mem);
            }
        }
        exec_section(&self.epilogue, 0, elem, &mut regs, mem);
        Ok(self.stats)
    }

    /// The dynamic instruction counts this kernel's execution produces,
    /// computed analytically at compile time (before trace fusion, so
    /// fused and unfused kernels report identical stats).
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Whether the `ub ≤ 3B` guard resolved to the scalar path.
    pub fn is_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// What the trace fusion pass did to this kernel (all zero when
    /// baked with fusion disabled).
    pub fn fusion_stats(&self) -> FusionStats {
        self.fusion
    }

    /// The individual rewrites the trace fusion pass applied, in order
    /// (empty when baked with fusion disabled). Each names its section
    /// and — for fused loads — the array.
    pub fn fusion_events(&self) -> &[FusionEvent] {
        &self.fusion_events
    }

    /// A human-readable listing of the lowered kernel: baked offsets,
    /// folded scalars, resolved guards and per-section iteration
    /// counts. Offsets are printed relative to each array's base so the
    /// text is stable across layouts of the same program. This listing
    /// shows the kernel *before* trace fusion; see
    /// [`trace`](CompiledKernel::trace) for the fused form. Empty when
    /// baked with the disassembly disabled.
    pub fn disassembly(&self) -> &str {
        &self.disassembly
    }

    /// The pre-decoded execution trace actually dispatched by
    /// [`run`](CompiledKernel::run): fused superinstructions
    /// (`vload.fused`, immediate binops), hoisted per-loop headers and
    /// dead ops stripped. Like the disassembly, offsets are printed
    /// relative to array bases so the text is stable across layouts.
    pub fn trace(&self) -> String {
        if self.fallback.is_some() {
            return self.disassembly.clone();
        }
        let mut out = String::new();
        let f = &self.fusion;
        let _ = writeln!(
            out,
            "; trace: V={V} regs={} fused={} fused-loads={} splat-ops={} hoisted={} eliminated={}",
            self.nregs, self.fused, f.fused_loads, f.splat_ops, f.hoisted, f.eliminated
        );
        self.render_section(&mut out, "prologue", &self.prologue, 1);
        if self.pair_iters > 0 {
            if !self.pair_header.is_empty() {
                self.render_section(&mut out, "pair.header", &self.pair_header, 1);
            }
            self.render_section(&mut out, "pair", &self.pair, self.pair_iters);
        }
        if self.body_iters > 0 {
            if !self.body_header.is_empty() {
                self.render_section(&mut out, "body.header", &self.body_header, 1);
            }
            self.render_section(&mut out, "body", &self.body, self.body_iters);
        }
        self.render_section(&mut out, "epilogue", &self.epilogue, 1);
        out
    }

    fn render_section(&self, out: &mut String, name: &str, ops: &[Op], iters: i64) {
        if iters == 1 {
            let _ = writeln!(out, "{name}:");
        } else {
            let _ = writeln!(out, "{name} x{iters}:");
        }
        for op in ops {
            let _ = writeln!(out, "{}", self.render_op(op));
        }
    }

    fn render_op(&self, op: &Op) -> String {
        let addr = |arr: u32, start: i64, step: i64| {
            let a = ArrayId::from_index(arr as usize);
            let rel = start - self.bases[arr as usize] as i64;
            if step != 0 {
                format!("{a}[base{rel:+}; {step:+}/iter]")
            } else {
                format!("{a}[base{rel:+}]")
            }
        };
        let imm_hex = |bytes: &Reg| {
            let mut s = String::new();
            for b in bytes[..self.elem.size()].iter().rev() {
                let _ = write!(s, "{b:02x}");
            }
            s
        };
        match *op {
            Op::Load { dst, arr, start, step } => {
                format!("  v{dst} = vload {}", addr(arr, start, step))
            }
            Op::LoadFused { dst, arr, start, step } => {
                format!("  v{dst} = vload.fused {}", addr(arr, start, step))
            }
            Op::Store { src, arr, start, step } => {
                format!("  vstore {}, v{src}", addr(arr, start, step))
            }
            Op::Shift { dst, a, b, amt } => format!("  v{dst} = vshiftpair(v{a}, v{b}, {amt})"),
            Op::Splice { dst, a, b, point } => format!("  v{dst} = vsplice(v{a}, v{b}, {point})"),
            Op::Perm { dst, a, b, ref pattern } => {
                let pat: Vec<String> = pattern.iter().map(|x| x.to_string()).collect();
                format!("  v{dst} = vperm(v{a}, v{b}, [{}])", pat.join(","))
            }
            Op::Splat { dst, ref bytes } => format!("  v{dst} = vsplat(0x{})", imm_hex(bytes)),
            Op::Bin { dst, op, a, b } => {
                format!("  v{dst} = {}(v{a}, v{b})", format!("{op:?}").to_lowercase())
            }
            Op::BinSplat { dst, op, a, ref imm, imm_left } => {
                let o = format!("{op:?}").to_lowercase();
                if imm_left {
                    format!("  v{dst} = {o}(0x{}, v{a})", imm_hex(imm))
                } else {
                    format!("  v{dst} = {o}(v{a}, 0x{})", imm_hex(imm))
                }
            }
            Op::Un { dst, op, a } => {
                format!("  v{dst} = {}(v{a})", format!("{op:?}").to_lowercase())
            }
            Op::Copy { dst, src } => format!("  v{dst} = v{src}"),
        }
    }
}

/// The compiled-engine [`Executor`]: compiles a kernel per call and
/// runs it. Use [`CompiledKernel`] directly to amortize compilation
/// over repeated runs, and [`PredecodedKernel`] to amortize pre-decoding
/// over many layouts of one program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeEngine;

impl Executor for NativeEngine {
    fn execute(
        &self,
        program: &SimdProgram,
        image: &mut MemoryImage,
        input: &RunInput,
    ) -> Result<RunStats, ExecError> {
        CompiledKernel::compile(program, image, input)?.run(image)
    }

    fn name(&self) -> &'static str {
        "native"
    }
}

/// Highest register index mentioned anywhere in the program.
fn max_reg(program: &SimdProgram) -> usize {
    let mut max = 0usize;
    let mut scan = |insts: &[VInst]| {
        for inst in insts {
            if let Some(d) = inst.def() {
                max = max.max(d.index());
            }
            inst.visit_uses(&mut |r| max = max.max(r.index()));
        }
    };
    scan(program.prologue());
    scan(program.body());
    if let Some(pair) = program.body_pair() {
        scan(pair);
    }
    scan(program.epilogue());
    max
}

/// Class counts of one section iteration, scaled to `n` iterations.
fn scaled(counts: RunStats, n: u64) -> RunStats {
    RunStats {
        loads: counts.loads * n,
        stores: counts.stores * n,
        shifts: counts.shifts * n,
        splices: counts.splices * n,
        splats: counts.splats * n,
        ops: counts.ops * n,
        copies: counts.copies * n,
        unaligned_mem: counts.unaligned_mem * n,
        ..RunStats::default()
    }
}

/// The dispatch loop: executes one straight-line section for iteration
/// `k`, with every address `start + k · step`.
fn exec_section(ops: &[Op], k: i64, elem: ScalarType, regs: &mut [Reg], mem: &mut [u8]) {
    for op in ops {
        match *op {
            Op::Load { dst, start, step, .. } | Op::LoadFused { dst, start, step, .. } => {
                let at = (start + k * step) as usize;
                regs[dst as usize].copy_from_slice(&mem[at..at + 16]);
            }
            Op::Store { src, start, step, .. } => {
                let at = (start + k * step) as usize;
                mem[at..at + 16].copy_from_slice(&regs[src as usize]);
            }
            Op::Shift { dst, a, b, amt } => {
                let av = regs[a as usize];
                let bv = regs[b as usize];
                let amt = amt as usize;
                let out = &mut regs[dst as usize];
                out[..16 - amt].copy_from_slice(&av[amt..]);
                out[16 - amt..].copy_from_slice(&bv[..amt]);
            }
            Op::Splice { dst, a, b, point } => {
                let av = regs[a as usize];
                let bv = regs[b as usize];
                let p = point as usize;
                let out = &mut regs[dst as usize];
                out[..p].copy_from_slice(&av[..p]);
                out[p..].copy_from_slice(&bv[p..]);
            }
            Op::Perm {
                dst,
                a,
                b,
                ref pattern,
            } => {
                let mut pair = [0u8; 32];
                pair[..16].copy_from_slice(&regs[a as usize]);
                pair[16..].copy_from_slice(&regs[b as usize]);
                let out = &mut regs[dst as usize];
                for (t, &sel) in pattern.iter().enumerate() {
                    out[t] = pair[sel as usize];
                }
            }
            Op::Splat { dst, bytes } => regs[dst as usize] = bytes,
            Op::Bin { dst, op, a, b } => {
                regs[dst as usize] = lanes::bin(op, elem, &regs[a as usize], &regs[b as usize]);
            }
            Op::BinSplat { dst, op, a, ref imm, imm_left } => {
                let av = regs[a as usize];
                regs[dst as usize] = if imm_left {
                    lanes::bin(op, elem, imm, &av)
                } else {
                    lanes::bin(op, elem, &av, imm)
                };
            }
            Op::Un { dst, op, a } => {
                regs[dst as usize] = lanes::un(op, elem, &regs[a as usize]);
            }
            Op::Copy { dst, src } => regs[dst as usize] = regs[src as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions, ReuseMode};
    use simdize_ir::parse_program;
    use simdize_reorg::{Policy, ReorgGraph};
    use simdize_vm::{run_simd, Interpreter};

    const FIG1: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
                        for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }";

    fn compile_prog(src: &str, policy: Policy, reuse: ReuseMode) -> SimdProgram {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(policy)
            .unwrap();
        generate(&g, &CodegenOptions::default().reuse(reuse)).unwrap()
    }

    #[test]
    fn engine_matches_interpreter_on_paper_example() {
        for policy in Policy::ALL {
            for reuse in [
                ReuseMode::None,
                ReuseMode::SoftwarePipeline,
                ReuseMode::PredictiveCommoning,
            ] {
                let prog = compile_prog(FIG1, policy, reuse);
                let source = prog.source().clone();
                let input = RunInput::with_ub(100);
                let mut interp_img = MemoryImage::with_seed(&source, VectorShape::V16, 99);
                let mut engine_img = interp_img.clone();
                let want = run_simd(&prog, &mut interp_img, &input).unwrap();
                let kernel = CompiledKernel::compile(&prog, &engine_img, &input).unwrap();
                let got = kernel.run(&mut engine_img).unwrap();
                assert_eq!(got, want, "{policy}/{reuse:?} stats diverged");
                assert_eq!(
                    engine_img.first_difference(&interp_img),
                    None,
                    "{policy}/{reuse:?} memory diverged"
                );
            }
        }
    }

    #[test]
    fn runtime_alignment_and_ub_match() {
        let src = "arrays { a: i32[256] @ ?; b: i32[256] @ ?; }
                   for i in 0..ub { a[i] = b[i+1]; }";
        let prog = compile_prog(src, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        for seed in [1u64, 5, 13] {
            for ub in [14u64, 100, 201] {
                let input = RunInput::with_ub(ub);
                let mut interp_img = MemoryImage::with_seed(&source, VectorShape::V16, seed);
                let mut engine_img = interp_img.clone();
                let want = run_simd(&prog, &mut interp_img, &input).unwrap();
                let got = NativeEngine.execute(&prog, &mut engine_img, &input).unwrap();
                assert_eq!(got, want, "seed {seed} ub {ub}");
                assert_eq!(engine_img.first_difference(&interp_img), None);
            }
        }
    }

    #[test]
    fn fallback_matches_interpreter() {
        let src = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
                   for i in 0..ub { a[i] = b[i+1]; }";
        let prog = compile_prog(src, Policy::Zero, ReuseMode::None);
        let source = prog.source().clone();
        let input = RunInput::with_ub(7);
        let mut interp_img = MemoryImage::with_seed(&source, VectorShape::V16, 3);
        let mut engine_img = interp_img.clone();
        let want = run_simd(&prog, &mut interp_img, &input).unwrap();
        let kernel = CompiledKernel::compile(&prog, &engine_img, &input).unwrap();
        assert!(kernel.is_fallback());
        assert!(kernel.disassembly().contains("scalar fallback"));
        assert!(kernel.trace().contains("scalar fallback"));
        let got = kernel.run(&mut engine_img).unwrap();
        assert!(got.used_fallback);
        assert_eq!(got, want);
        assert_eq!(engine_img.first_difference(&interp_img), None);
    }

    #[test]
    fn rejects_mismatched_trip_and_shapes() {
        let prog = compile_prog(FIG1, Policy::Zero, ReuseMode::None);
        let source = prog.source().clone();
        let img = MemoryImage::with_seed(&source, VectorShape::V16, 1);
        let err = CompiledKernel::compile(&prog, &img, &RunInput::with_ub(99)).unwrap_err();
        assert_eq!(
            err,
            ExecError::TripMismatch {
                declared: 100,
                supplied: 99
            }
        );
        let img8 = MemoryImage::with_seed(&source, VectorShape::V8, 1);
        let err = CompiledKernel::compile(&prog, &img8, &RunInput::with_ub(100)).unwrap_err();
        assert!(matches!(err, ExecError::Unsupported { .. }));
    }

    #[test]
    fn rejects_foreign_layout_at_run() {
        let prog = compile_prog(FIG1, Policy::Zero, ReuseMode::None);
        let source = prog.source().clone();
        let img = MemoryImage::with_seed(&source, VectorShape::V16, 1);
        let kernel = CompiledKernel::compile(&prog, &img, &RunInput::with_ub(100)).unwrap();
        // Same layout, refilled contents: accepted.
        let mut refill = img.clone();
        refill.fill_random(77);
        assert!(kernel.layout_matches(&refill));
        kernel.run(&mut refill).unwrap();
        // A different program's image: rejected, not corrupted.
        let other = parse_program(
            "arrays { x: i32[16] @ 0; y: i32[16] @ 0; }
             for i in 0..8 { x[i] = y[i]; }",
        )
        .unwrap();
        let mut foreign = MemoryImage::with_seed(&other, VectorShape::V16, 1);
        assert!(!kernel.layout_matches(&foreign));
        assert!(matches!(
            kernel.run(&mut foreign),
            Err(ExecError::Unsupported { .. })
        ));
    }

    #[test]
    fn kernel_reuse_across_refills_matches_fresh_interpreter_runs() {
        let prog = compile_prog(FIG1, Policy::Eager, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let input = RunInput::with_ub(100);
        let base = MemoryImage::with_seed(&source, VectorShape::V16, 42);
        let kernel = CompiledKernel::compile(&prog, &base, &input).unwrap();
        for fill in [9u64, 10, 11] {
            let mut engine_img = base.clone();
            engine_img.fill_random(fill);
            let mut interp_img = engine_img.clone();
            kernel.run(&mut engine_img).unwrap();
            run_simd(&prog, &mut interp_img, &input).unwrap();
            assert_eq!(engine_img.first_difference(&interp_img), None, "fill {fill}");
        }
    }

    #[test]
    fn executor_names() {
        assert_eq!(NativeEngine.name(), "native");
        assert_eq!(Interpreter.name(), "interp");
    }

    #[test]
    fn disassembly_lists_sections_and_baked_offsets() {
        let prog = compile_prog(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let img = MemoryImage::with_seed(&source, VectorShape::V16, 1);
        let kernel = CompiledKernel::compile(&prog, &img, &RunInput::with_ub(100)).unwrap();
        let dis = kernel.disassembly();
        assert!(dis.starts_with("; kernel: V=16 D=4 B=4 ub=100"));
        assert!(dis.contains("prologue (i = 0):"));
        assert!(dis.contains("epilogue"));
        assert!(dis.contains("load.chunk"));
        assert!(dis.contains("/iter"));
    }

    #[test]
    fn predecode_plus_bake_equals_compile() {
        let prog = compile_prog(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let input = RunInput::with_ub(100);
        let pre = PredecodedKernel::new(&prog).unwrap();
        for seed in [1u64, 9, 23] {
            let img = MemoryImage::with_seed(&source, VectorShape::V16, seed);
            let direct = CompiledKernel::compile(&prog, &img, &input).unwrap();
            let baked = pre.bake(&img, &input, &KernelOptions::default()).unwrap();
            assert_eq!(baked.stats(), direct.stats(), "seed {seed}");
            assert_eq!(baked.disassembly(), direct.disassembly(), "seed {seed}");
            assert_eq!(baked.trace(), direct.trace(), "seed {seed}");
            let mut a = img.clone();
            let mut b = img.clone();
            direct.run(&mut a).unwrap();
            baked.run(&mut b).unwrap();
            assert_eq!(a.first_difference(&b), None, "seed {seed}");
        }
    }

    #[test]
    fn fused_and_unfused_kernels_agree() {
        let prog = compile_prog(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let input = RunInput::with_ub(100);
        let pre = PredecodedKernel::new(&prog).unwrap();
        let img = MemoryImage::with_seed(&source, VectorShape::V16, 5);
        let fused = pre.bake(&img, &input, &KernelOptions::default()).unwrap();
        let plain = pre
            .bake(&img, &input, &KernelOptions::default().fuse(false))
            .unwrap();
        assert_eq!(fused.stats(), plain.stats());
        assert_eq!(plain.fusion_stats(), FusionStats::default());
        let mut a = img.clone();
        let mut b = img.clone();
        fused.run(&mut a).unwrap();
        plain.run(&mut b).unwrap();
        assert_eq!(a.first_difference(&b), None);
    }

    #[test]
    fn trace_shows_fused_loads_on_shift_heavy_kernel() {
        // Zero + software pipelining on misaligned streams: the steady
        // state is load/shift chains, exactly what fusion targets.
        let prog = compile_prog(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let img = MemoryImage::with_seed(&source, VectorShape::V16, 1);
        let kernel = CompiledKernel::compile(&prog, &img, &RunInput::with_ub(100)).unwrap();
        let st = kernel.fusion_stats();
        assert!(st.fused_loads > 0, "no fused loads: {st:?}");
        assert!(kernel.trace().contains("vload.fused"));
        // The fused trace executes fewer steady-state ops than the
        // unfused listing.
        assert!(st.eliminated > 0, "nothing eliminated: {st:?}");
    }

    #[test]
    fn disassembly_off_skips_text_only() {
        let prog = compile_prog(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let input = RunInput::with_ub(100);
        let pre = PredecodedKernel::new(&prog).unwrap();
        let img = MemoryImage::with_seed(&source, VectorShape::V16, 7);
        let quiet = pre
            .bake(&img, &input, &KernelOptions::default().disassembly(false))
            .unwrap();
        let loud = pre.bake(&img, &input, &KernelOptions::default()).unwrap();
        assert!(quiet.disassembly().is_empty());
        assert_eq!(quiet.stats(), loud.stats());
        let mut a = img.clone();
        let mut b = img.clone();
        quiet.run(&mut a).unwrap();
        loud.run(&mut b).unwrap();
        assert_eq!(a.first_difference(&b), None);
    }
}
