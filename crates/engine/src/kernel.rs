//! Kernel compilation: one `SimdProgram` + one memory layout + one set
//! of runtime inputs, lowered once into straight-line instruction
//! slices that a tight dispatch loop can execute with no per-iteration
//! decisions left.
//!
//! Everything the interpreter re-derives on every instruction is folded
//! here, exactly once:
//!
//! * every scalar expression (alignment masks, shift amounts, splice
//!   points, the runtime upper bound) is evaluated against the image;
//! * every address is reduced to a baked `(start, step)` byte-offset
//!   pair — truncation to the enclosing chunk happens at compile time,
//!   which is sound because a steady iteration advances every address
//!   by `scale · V` bytes, a multiple of the chunk size;
//! * every guarded block is resolved (the conditions are loop
//!   invariant) and flattened away;
//! * every access stream is bounds-checked against the image's guarded
//!   ranges, first and last execution, so the hot loop indexes the raw
//!   bytes directly;
//! * registers are checked defined-before-use in execution order;
//! * the dynamic instruction counts are computed analytically, charging
//!   the same costs as `simdize_vm::run_simd` charges dynamically.

use crate::lanes::{self, Reg};
use simdize_codegen::{SExpr, ScalarEnv, SimdProgram, VInst};
use simdize_ir::{ArrayId, BinOp, LoopProgram, ScalarType, UnOp, Value, VectorShape};
use simdize_vm::{
    run_scalar, runtime_expr_count, scalar_ideal_ops, ExecError, Executor, MemoryImage, RunInput,
    RunStats, CALL_OVERHEAD, LOOP_OVERHEAD_PER_ITERATION, RUNTIME_SETUP_PER_EXPR,
};
use std::fmt::Write as _;

/// The one vector width the engine has kernels for.
const V: i64 = 16;

/// One pre-lowered engine instruction. Memory operands are raw byte
/// offsets into the image — `at = start + iteration · step` — with any
/// chunk truncation already applied; all scalar operands are folded.
#[derive(Debug, Clone)]
enum Op {
    Load { dst: u32, start: i64, step: i64 },
    Store { src: u32, start: i64, step: i64 },
    Shift { dst: u32, a: u32, b: u32, amt: u8 },
    Splice { dst: u32, a: u32, b: u32, point: u8 },
    Perm { dst: u32, a: u32, b: u32, pattern: [u8; 16] },
    Splat { dst: u32, bytes: Reg },
    Bin { dst: u32, op: BinOp, a: u32, b: u32 },
    Un { dst: u32, op: UnOp, a: u32 },
    Copy { dst: u32, src: u32 },
}

/// The `ub ≤ 3B` guard resolved to the scalar path at compile time.
#[derive(Debug, Clone)]
struct FallbackPlan {
    source: LoopProgram,
    ub: u64,
    params: Vec<i64>,
}

/// A `SimdProgram` compiled for one memory layout and one set of
/// runtime inputs.
///
/// Compile once with [`CompiledKernel::compile`], then [`run`] against
/// the image (or any image with the identical layout — same bases, same
/// length). The kernel's [`stats`] are computed at compile time and are
/// identical to what [`simdize_vm::run_simd`] would count dynamically;
/// the differential tests enforce byte-for-byte and stat-for-stat
/// equality with the interpreter.
///
/// [`run`]: CompiledKernel::run
/// [`stats`]: CompiledKernel::stats
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    prologue: Vec<Op>,
    pair: Vec<Op>,
    pair_iters: i64,
    body: Vec<Op>,
    body_iters: i64,
    epilogue: Vec<Op>,
    nregs: usize,
    elem: ScalarType,
    shape: VectorShape,
    stats: RunStats,
    bases: Vec<u64>,
    image_len: usize,
    fallback: Option<FallbackPlan>,
    disassembly: String,
}

struct Env<'a> {
    ub: i64,
    image: &'a MemoryImage,
}

impl ScalarEnv for Env<'_> {
    fn ub(&self) -> i64 {
        self.ub
    }
    fn base_of(&self, array: ArrayId) -> u64 {
        self.image.base_of(array)
    }
    fn shape(&self) -> VectorShape {
        self.image.shape()
    }
}

/// Per-section lowering state.
struct Lowering<'a> {
    image: &'a MemoryImage,
    params: &'a [i64],
    ub: i64,
    elem: ScalarType,
    elem_size: i64,
    defined: Vec<bool>,
    dis: String,
}

impl Lowering<'_> {
    fn eval(&self, e: &SExpr) -> i64 {
        e.eval(&Env {
            ub: self.ub,
            image: self.image,
        })
    }

    fn use_reg(&self, r: simdize_codegen::VReg) -> Result<u32, ExecError> {
        if !self.defined[r.index()] {
            return Err(ExecError::UninitializedRegister { index: r.index() });
        }
        Ok(r.index() as u32)
    }

    fn def_reg(&mut self, r: simdize_codegen::VReg) -> u32 {
        self.defined[r.index()] = true;
        r.index() as u32
    }

    /// Validates one memory stream: `iters` accesses starting at byte
    /// `start`, advancing by `step` bytes each, every one inside the
    /// array's guarded region.
    fn check_stream(
        &self,
        array: ArrayId,
        start: i64,
        step: i64,
        iters: i64,
    ) -> Result<(), ExecError> {
        let (lo, hi) = self.image.guarded_range(array);
        let last = start + (iters - 1) * step;
        for at in [start, last] {
            if at < lo || at + V > hi {
                let base = self.image.base_of(array);
                return Err(ExecError::ChunkOutOfBounds {
                    array,
                    addr: at,
                    base,
                    byte_len: (hi - base as i64 - 4 * V) as u64,
                });
            }
        }
        Ok(())
    }

    /// Lowers `insts` executed with the induction variable starting at
    /// `i0` and advancing by `step_i` elements for `iters` iterations,
    /// appending engine ops to `out` and class counts (per single
    /// iteration) to `counts`.
    fn lower(
        &mut self,
        insts: &[VInst],
        i0: i64,
        step_i: i64,
        iters: i64,
        counts: &mut RunStats,
        out: &mut Vec<Op>,
    ) -> Result<(), ExecError> {
        for inst in insts {
            self.lower_inst(inst, i0, step_i, iters, counts, out)?;
        }
        Ok(())
    }

    /// Baked `(first byte address, bytes per iteration)` of `addr` for a
    /// section starting at induction value `i0` advancing `step_i`.
    fn addr_of(&self, addr: &simdize_codegen::Addr, i0: i64, step_i: i64) -> (i64, i64) {
        let base = self.image.base_of(addr.array) as i64;
        let a0 = base + (addr.scale * i0 + addr.elem) * self.elem_size;
        let step = addr.scale * step_i * self.elem_size;
        (a0, step)
    }

    fn dis_addr(&self, array: ArrayId, start: i64, step: i64) -> String {
        let rel = start - self.image.base_of(array) as i64;
        if step != 0 {
            format!("{array}[base{rel:+}; {step:+}/iter]")
        } else {
            format!("{array}[base{rel:+}]")
        }
    }

    fn lower_inst(
        &mut self,
        inst: &VInst,
        i0: i64,
        step_i: i64,
        iters: i64,
        counts: &mut RunStats,
        out: &mut Vec<Op>,
    ) -> Result<(), ExecError> {
        match inst {
            VInst::LoadA { dst, addr } => {
                let (a0, step) = self.addr_of(addr, i0, step_i);
                let start = a0 & !(V - 1);
                self.check_stream(addr.array, start, step, iters)?;
                let d = self.def_reg(*dst);
                let at = self.dis_addr(addr.array, start, step);
                let _ = writeln!(self.dis, "  v{d} = load.chunk {at}");
                out.push(Op::Load { dst: d, start, step });
                counts.loads += 1;
            }
            VInst::StoreA { addr, src } => {
                let (a0, step) = self.addr_of(addr, i0, step_i);
                let start = a0 & !(V - 1);
                self.check_stream(addr.array, start, step, iters)?;
                let s = self.use_reg(*src)?;
                let at = self.dis_addr(addr.array, start, step);
                let _ = writeln!(self.dis, "  store.chunk {at}, v{s}");
                out.push(Op::Store { src: s, start, step });
                counts.stores += 1;
            }
            VInst::LoadU { dst, addr } => {
                let (start, step) = self.addr_of(addr, i0, step_i);
                self.check_stream(addr.array, start, step, iters)?;
                let d = self.def_reg(*dst);
                let at = self.dis_addr(addr.array, start, step);
                let _ = writeln!(self.dis, "  v{d} = load.exact {at}");
                out.push(Op::Load { dst: d, start, step });
                counts.unaligned_mem += 1;
            }
            VInst::StoreU { addr, src } => {
                let (start, step) = self.addr_of(addr, i0, step_i);
                self.check_stream(addr.array, start, step, iters)?;
                let s = self.use_reg(*src)?;
                let at = self.dis_addr(addr.array, start, step);
                let _ = writeln!(self.dis, "  store.exact {at}, v{s}");
                out.push(Op::Store { src: s, start, step });
                counts.unaligned_mem += 1;
            }
            VInst::ShiftPair { dst, a, b, amt } => {
                let amount = self.eval(amt);
                if !(0..=V).contains(&amount) {
                    return Err(ExecError::BadShiftAmount { amount });
                }
                let (ra, rb) = (self.use_reg(*a)?, self.use_reg(*b)?);
                let d = self.def_reg(*dst);
                let _ = writeln!(self.dis, "  v{d} = shift(v{ra}, v{rb}, {amount})");
                out.push(Op::Shift {
                    dst: d,
                    a: ra,
                    b: rb,
                    amt: amount as u8,
                });
                counts.shifts += 1;
            }
            VInst::Splice { dst, a, b, point } => {
                let p = self.eval(point);
                if !(0..=V).contains(&p) {
                    return Err(ExecError::BadSplicePoint { point: p });
                }
                let (ra, rb) = (self.use_reg(*a)?, self.use_reg(*b)?);
                let d = self.def_reg(*dst);
                let _ = writeln!(self.dis, "  v{d} = splice(v{ra}, v{rb}, {p})");
                out.push(Op::Splice {
                    dst: d,
                    a: ra,
                    b: rb,
                    point: p as u8,
                });
                counts.splices += 1;
            }
            VInst::Perm { dst, a, b, pattern } => {
                if pattern.len() != V as usize {
                    return Err(ExecError::BadShiftAmount {
                        amount: pattern.len() as i64,
                    });
                }
                let mut pat = [0u8; 16];
                for (t, &sel) in pattern.iter().enumerate() {
                    if sel as i64 >= 2 * V {
                        return Err(ExecError::BadShiftAmount { amount: sel as i64 });
                    }
                    pat[t] = sel;
                }
                let (ra, rb) = (self.use_reg(*a)?, self.use_reg(*b)?);
                let d = self.def_reg(*dst);
                let pat_str: Vec<String> = pattern.iter().map(|x| x.to_string()).collect();
                let _ = writeln!(
                    self.dis,
                    "  v{d} = perm(v{ra}, v{rb}, [{}])",
                    pat_str.join(",")
                );
                out.push(Op::Perm {
                    dst: d,
                    a: ra,
                    b: rb,
                    pattern: pat,
                });
                counts.shifts += 1; // permutes count as reorganization ops
            }
            VInst::SplatConst { dst, value } => {
                let d = self.def_reg(*dst);
                let _ = writeln!(self.dis, "  v{d} = splat({value})");
                out.push(Op::Splat {
                    dst: d,
                    bytes: self.splat(*value),
                });
                counts.splats += 1;
            }
            VInst::SplatParam { dst, param } => {
                let value = *self
                    .params
                    .get(param.index())
                    .ok_or(ExecError::MissingParam {
                        index: param.index(),
                    })?;
                let d = self.def_reg(*dst);
                let _ = writeln!(self.dis, "  v{d} = splat(p{}={value})", param.index());
                out.push(Op::Splat {
                    dst: d,
                    bytes: self.splat(value),
                });
                counts.splats += 1;
            }
            VInst::Bin { dst, op, a, b } => {
                let (ra, rb) = (self.use_reg(*a)?, self.use_reg(*b)?);
                let d = self.def_reg(*dst);
                let _ = writeln!(
                    self.dis,
                    "  v{d} = {}(v{ra}, v{rb})",
                    format!("{op:?}").to_lowercase()
                );
                out.push(Op::Bin {
                    dst: d,
                    op: *op,
                    a: ra,
                    b: rb,
                });
                counts.ops += 1;
            }
            VInst::Un { dst, op, a } => {
                let ra = self.use_reg(*a)?;
                let d = self.def_reg(*dst);
                let _ = writeln!(
                    self.dis,
                    "  v{d} = {}(v{ra})",
                    format!("{op:?}").to_lowercase()
                );
                out.push(Op::Un {
                    dst: d,
                    op: *op,
                    a: ra,
                });
                counts.ops += 1;
            }
            VInst::Copy { dst, src } => {
                let s = self.use_reg(*src)?;
                let d = self.def_reg(*dst);
                let _ = writeln!(self.dis, "  v{d} = v{s}");
                out.push(Op::Copy { dst: d, src: s });
                counts.copies += 1;
            }
            VInst::Guarded { cond, body } => {
                let taken = cond.eval(&Env {
                    ub: self.ub,
                    image: self.image,
                });
                let _ = writeln!(
                    self.dis,
                    "  ; guard [{cond}] resolved {}",
                    if taken { "taken" } else { "skipped" }
                );
                if taken {
                    self.lower(body, i0, step_i, iters, counts, out)?;
                }
            }
        }
        Ok(())
    }

    fn splat(&self, value: i64) -> Reg {
        let bytes = Value::from_i64(self.elem, value).to_le_bytes();
        let d = self.elem_size as usize;
        let mut out = [0u8; 16];
        for lane in 0..16 / d {
            out[lane * d..lane * d + d].copy_from_slice(&bytes);
        }
        out
    }
}

impl CompiledKernel {
    /// Compiles `program` for the layout of `image` and the runtime
    /// inputs in `input`. The image's *contents* do not matter — only
    /// its array placement — so one kernel may run over many refills of
    /// the same layout.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Unsupported`] for vector shapes other than
    /// 16 bytes, [`ExecError::TripMismatch`]/[`ExecError::MissingParam`]
    /// on inconsistent inputs, and any machine fault the interpreter
    /// would raise at runtime (out-of-bounds streams, bad shift
    /// amounts, reads of undefined registers) — those are detected here,
    /// before any memory is touched.
    pub fn compile(
        program: &SimdProgram,
        image: &MemoryImage,
        input: &RunInput,
    ) -> Result<CompiledKernel, ExecError> {
        if program.shape().bytes() as i64 != V || image.shape().bytes() as i64 != V {
            return Err(ExecError::Unsupported {
                what: "vector shapes other than V16",
            });
        }
        let source = program.source();
        if input.params.len() < source.params().len() {
            return Err(ExecError::MissingParam {
                index: input.params.len(),
            });
        }
        if let Some(declared) = source.trip().known() {
            if input.ub != declared {
                return Err(ExecError::TripMismatch {
                    declared,
                    supplied: input.ub,
                });
            }
        }
        let ub = source.trip().known().unwrap_or(input.ub);
        let bases: Vec<u64> = (0..source.arrays().len())
            .map(|k| image.base_of(ArrayId::from_index(k)))
            .collect();

        let mut stats = RunStats {
            invocation_overhead: CALL_OVERHEAD,
            ..RunStats::default()
        };

        if ub <= program.guard_min_trip() {
            // §4.4 guard: the kernel is the original scalar loop.
            stats.used_fallback = true;
            stats.scalar_fallback =
                scalar_ideal_ops(source, ub) + ub * LOOP_OVERHEAD_PER_ITERATION;
            return Ok(CompiledKernel {
                prologue: Vec::new(),
                pair: Vec::new(),
                pair_iters: 0,
                body: Vec::new(),
                body_iters: 0,
                epilogue: Vec::new(),
                nregs: 0,
                elem: source.elem(),
                shape: image.shape(),
                stats,
                bases,
                image_len: image.bytes().len(),
                fallback: Some(FallbackPlan {
                    source: source.clone(),
                    ub,
                    params: input.params.clone(),
                }),
                disassembly: format!(
                    "; scalar fallback: ub = {ub} <= guard {}\n",
                    program.guard_min_trip()
                ),
            });
        }

        stats.invocation_overhead += RUNTIME_SETUP_PER_EXPR * runtime_expr_count(program) as u64;

        let b = program.block() as i64;
        let lb = program.lower_bound() as i64;
        let upper = program.upper_bound().eval(&Env {
            ub: ub as i64,
            image,
        });

        // Iteration counts, mirroring run_simd's loop structure exactly:
        //   if pair: while i + B < upper { i += 2B }   (steady ×2)
        //   while i < upper { i += B }                 (leftover)
        let pair_iters = if program.body_pair().is_some() && lb + b < upper {
            (upper - b - lb + 2 * b - 1).div_euclid(2 * b)
        } else {
            0
        };
        let i_after = lb + 2 * b * pair_iters;
        let body_iters = if i_after < upper {
            (upper - i_after + b - 1).div_euclid(b)
        } else {
            0
        };
        let i_final = i_after + b * body_iters;

        let mut low = Lowering {
            image,
            params: &input.params,
            ub: ub as i64,
            elem: source.elem(),
            elem_size: source.elem().size() as i64,
            defined: vec![false; max_reg(program) + 1],
            dis: String::new(),
        };
        let _ = writeln!(
            low.dis,
            "; kernel: V={V} D={} B={b} ub={ub} upper={upper} regs={}",
            low.elem_size,
            low.defined.len()
        );

        let mut prologue = Vec::new();
        let mut pair = Vec::new();
        let mut body = Vec::new();
        let mut epilogue = Vec::new();
        let mut pro_counts = RunStats::default();
        let mut pair_counts = RunStats::default();
        let mut body_counts = RunStats::default();
        let mut epi_counts = RunStats::default();

        let _ = writeln!(low.dis, "prologue (i = 0):");
        low.lower(program.prologue(), 0, 0, 1, &mut pro_counts, &mut prologue)?;
        if pair_iters > 0 {
            let _ = writeln!(low.dis, "pair (i = {lb}, step {}, x{pair_iters}):", 2 * b);
            low.lower(
                program.body_pair().unwrap(),
                lb,
                2 * b,
                pair_iters,
                &mut pair_counts,
                &mut pair,
            )?;
        }
        if body_iters > 0 {
            let _ = writeln!(low.dis, "body (i = {i_after}, step {b}, x{body_iters}):");
            low.lower(
                program.body(),
                i_after,
                b,
                body_iters,
                &mut body_counts,
                &mut body,
            )?;
        }
        let _ = writeln!(low.dis, "epilogue (i = {i_final}):");
        low.lower(program.epilogue(), i_final, 0, 1, &mut epi_counts, &mut epilogue)?;

        stats += pro_counts;
        stats += scaled(pair_counts, pair_iters as u64);
        stats += scaled(body_counts, body_iters as u64);
        stats += epi_counts;
        stats.steady_iterations = 2 * pair_iters as u64 + body_iters as u64;
        stats.loop_overhead =
            (pair_iters as u64 + body_iters as u64) * LOOP_OVERHEAD_PER_ITERATION;

        Ok(CompiledKernel {
            prologue,
            pair,
            pair_iters,
            body,
            body_iters,
            epilogue,
            nregs: low.defined.len(),
            elem: source.elem(),
            shape: image.shape(),
            stats,
            bases,
            image_len: image.bytes().len(),
            fallback: None,
            disassembly: low.dis,
        })
    }

    /// Executes the kernel against `image`, which must have the layout
    /// the kernel was compiled for.
    ///
    /// The pre-lowered path is fault-free by construction (every access
    /// and register was validated at compile time), so the hot loop is
    /// pure dispatch. Returns the compile-time [`RunStats`].
    ///
    /// # Errors
    ///
    /// [`ExecError::Unsupported`] when `image` has a different layout
    /// than the compile-time one; scalar-fallback kernels propagate
    /// [`run_scalar`] faults.
    pub fn run(&self, image: &mut MemoryImage) -> Result<RunStats, ExecError> {
        let same_layout = image.shape() == self.shape
            && image.elem() == self.elem
            && image.bytes().len() == self.image_len
            && (0..self.bases.len())
                .all(|k| image.base_of(ArrayId::from_index(k)) == self.bases[k]);
        if !same_layout {
            return Err(ExecError::Unsupported {
                what: "a memory image with a different layout than compiled for",
            });
        }
        if let Some(fb) = &self.fallback {
            run_scalar(&fb.source, image, fb.ub, &fb.params)?;
            return Ok(self.stats);
        }
        let mut regs = vec![[0u8; 16]; self.nregs];
        let elem = self.elem;
        let mem = image.bytes_mut();
        exec_section(&self.prologue, 0, elem, &mut regs, mem);
        for k in 0..self.pair_iters {
            exec_section(&self.pair, k, elem, &mut regs, mem);
        }
        for k in 0..self.body_iters {
            exec_section(&self.body, k, elem, &mut regs, mem);
        }
        exec_section(&self.epilogue, 0, elem, &mut regs, mem);
        Ok(self.stats)
    }

    /// The dynamic instruction counts this kernel's execution produces,
    /// computed analytically at compile time.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Whether the `ub ≤ 3B` guard resolved to the scalar path.
    pub fn is_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// A human-readable listing of the lowered kernel: baked offsets,
    /// folded scalars, resolved guards and per-section iteration
    /// counts. Offsets are printed relative to each array's base so the
    /// text is stable across layouts of the same program.
    pub fn disassembly(&self) -> &str {
        &self.disassembly
    }
}

/// The compiled-engine [`Executor`]: compiles a kernel per call and
/// runs it. Use [`CompiledKernel`] directly to amortize compilation
/// over repeated runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeEngine;

impl Executor for NativeEngine {
    fn execute(
        &self,
        program: &SimdProgram,
        image: &mut MemoryImage,
        input: &RunInput,
    ) -> Result<RunStats, ExecError> {
        CompiledKernel::compile(program, image, input)?.run(image)
    }

    fn name(&self) -> &'static str {
        "native"
    }
}

/// Highest register index mentioned anywhere in the program.
fn max_reg(program: &SimdProgram) -> usize {
    let mut max = 0usize;
    let mut scan = |insts: &[VInst]| {
        for inst in insts {
            if let Some(d) = inst.def() {
                max = max.max(d.index());
            }
            inst.visit_uses(&mut |r| max = max.max(r.index()));
        }
    };
    scan(program.prologue());
    scan(program.body());
    if let Some(pair) = program.body_pair() {
        scan(pair);
    }
    scan(program.epilogue());
    max
}

/// Class counts of one section iteration, scaled to `n` iterations.
fn scaled(counts: RunStats, n: u64) -> RunStats {
    RunStats {
        loads: counts.loads * n,
        stores: counts.stores * n,
        shifts: counts.shifts * n,
        splices: counts.splices * n,
        splats: counts.splats * n,
        ops: counts.ops * n,
        copies: counts.copies * n,
        unaligned_mem: counts.unaligned_mem * n,
        ..RunStats::default()
    }
}

/// The dispatch loop: executes one straight-line section for iteration
/// `k`, with every address `start + k · step`.
fn exec_section(ops: &[Op], k: i64, elem: ScalarType, regs: &mut [Reg], mem: &mut [u8]) {
    for op in ops {
        match *op {
            Op::Load { dst, start, step } => {
                let at = (start + k * step) as usize;
                regs[dst as usize].copy_from_slice(&mem[at..at + 16]);
            }
            Op::Store { src, start, step } => {
                let at = (start + k * step) as usize;
                mem[at..at + 16].copy_from_slice(&regs[src as usize]);
            }
            Op::Shift { dst, a, b, amt } => {
                let av = regs[a as usize];
                let bv = regs[b as usize];
                let amt = amt as usize;
                let out = &mut regs[dst as usize];
                out[..16 - amt].copy_from_slice(&av[amt..]);
                out[16 - amt..].copy_from_slice(&bv[..amt]);
            }
            Op::Splice { dst, a, b, point } => {
                let av = regs[a as usize];
                let bv = regs[b as usize];
                let p = point as usize;
                let out = &mut regs[dst as usize];
                out[..p].copy_from_slice(&av[..p]);
                out[p..].copy_from_slice(&bv[p..]);
            }
            Op::Perm {
                dst,
                a,
                b,
                ref pattern,
            } => {
                let mut pair = [0u8; 32];
                pair[..16].copy_from_slice(&regs[a as usize]);
                pair[16..].copy_from_slice(&regs[b as usize]);
                let out = &mut regs[dst as usize];
                for (t, &sel) in pattern.iter().enumerate() {
                    out[t] = pair[sel as usize];
                }
            }
            Op::Splat { dst, bytes } => regs[dst as usize] = bytes,
            Op::Bin { dst, op, a, b } => {
                regs[dst as usize] = lanes::bin(op, elem, &regs[a as usize], &regs[b as usize]);
            }
            Op::Un { dst, op, a } => {
                regs[dst as usize] = lanes::un(op, elem, &regs[a as usize]);
            }
            Op::Copy { dst, src } => regs[dst as usize] = regs[src as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions, ReuseMode};
    use simdize_ir::parse_program;
    use simdize_reorg::{Policy, ReorgGraph};
    use simdize_vm::{run_simd, Interpreter};

    const FIG1: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
                        for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }";

    fn compile_prog(src: &str, policy: Policy, reuse: ReuseMode) -> SimdProgram {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(policy)
            .unwrap();
        generate(&g, &CodegenOptions::default().reuse(reuse)).unwrap()
    }

    #[test]
    fn engine_matches_interpreter_on_paper_example() {
        for policy in Policy::ALL {
            for reuse in [
                ReuseMode::None,
                ReuseMode::SoftwarePipeline,
                ReuseMode::PredictiveCommoning,
            ] {
                let prog = compile_prog(FIG1, policy, reuse);
                let source = prog.source().clone();
                let input = RunInput::with_ub(100);
                let mut interp_img = MemoryImage::with_seed(&source, VectorShape::V16, 99);
                let mut engine_img = interp_img.clone();
                let want = run_simd(&prog, &mut interp_img, &input).unwrap();
                let kernel = CompiledKernel::compile(&prog, &engine_img, &input).unwrap();
                let got = kernel.run(&mut engine_img).unwrap();
                assert_eq!(got, want, "{policy}/{reuse:?} stats diverged");
                assert_eq!(
                    engine_img.first_difference(&interp_img),
                    None,
                    "{policy}/{reuse:?} memory diverged"
                );
            }
        }
    }

    #[test]
    fn runtime_alignment_and_ub_match() {
        let src = "arrays { a: i32[256] @ ?; b: i32[256] @ ?; }
                   for i in 0..ub { a[i] = b[i+1]; }";
        let prog = compile_prog(src, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        for seed in [1u64, 5, 13] {
            for ub in [14u64, 100, 201] {
                let input = RunInput::with_ub(ub);
                let mut interp_img = MemoryImage::with_seed(&source, VectorShape::V16, seed);
                let mut engine_img = interp_img.clone();
                let want = run_simd(&prog, &mut interp_img, &input).unwrap();
                let got = NativeEngine.execute(&prog, &mut engine_img, &input).unwrap();
                assert_eq!(got, want, "seed {seed} ub {ub}");
                assert_eq!(engine_img.first_difference(&interp_img), None);
            }
        }
    }

    #[test]
    fn fallback_matches_interpreter() {
        let src = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
                   for i in 0..ub { a[i] = b[i+1]; }";
        let prog = compile_prog(src, Policy::Zero, ReuseMode::None);
        let source = prog.source().clone();
        let input = RunInput::with_ub(7);
        let mut interp_img = MemoryImage::with_seed(&source, VectorShape::V16, 3);
        let mut engine_img = interp_img.clone();
        let want = run_simd(&prog, &mut interp_img, &input).unwrap();
        let kernel = CompiledKernel::compile(&prog, &engine_img, &input).unwrap();
        assert!(kernel.is_fallback());
        assert!(kernel.disassembly().contains("scalar fallback"));
        let got = kernel.run(&mut engine_img).unwrap();
        assert!(got.used_fallback);
        assert_eq!(got, want);
        assert_eq!(engine_img.first_difference(&interp_img), None);
    }

    #[test]
    fn rejects_mismatched_trip_and_shapes() {
        let prog = compile_prog(FIG1, Policy::Zero, ReuseMode::None);
        let source = prog.source().clone();
        let img = MemoryImage::with_seed(&source, VectorShape::V16, 1);
        let err = CompiledKernel::compile(&prog, &img, &RunInput::with_ub(99)).unwrap_err();
        assert_eq!(
            err,
            ExecError::TripMismatch {
                declared: 100,
                supplied: 99
            }
        );
        let img8 = MemoryImage::with_seed(&source, VectorShape::V8, 1);
        let err = CompiledKernel::compile(&prog, &img8, &RunInput::with_ub(100)).unwrap_err();
        assert!(matches!(err, ExecError::Unsupported { .. }));
    }

    #[test]
    fn rejects_foreign_layout_at_run() {
        let prog = compile_prog(FIG1, Policy::Zero, ReuseMode::None);
        let source = prog.source().clone();
        let img = MemoryImage::with_seed(&source, VectorShape::V16, 1);
        let kernel = CompiledKernel::compile(&prog, &img, &RunInput::with_ub(100)).unwrap();
        // Same layout, refilled contents: accepted.
        let mut refill = img.clone();
        refill.fill_random(77);
        kernel.run(&mut refill).unwrap();
        // A different program's image: rejected, not corrupted.
        let other = parse_program(
            "arrays { x: i32[16] @ 0; y: i32[16] @ 0; }
             for i in 0..8 { x[i] = y[i]; }",
        )
        .unwrap();
        let mut foreign = MemoryImage::with_seed(&other, VectorShape::V16, 1);
        assert!(matches!(
            kernel.run(&mut foreign),
            Err(ExecError::Unsupported { .. })
        ));
    }

    #[test]
    fn kernel_reuse_across_refills_matches_fresh_interpreter_runs() {
        let prog = compile_prog(FIG1, Policy::Eager, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let input = RunInput::with_ub(100);
        let base = MemoryImage::with_seed(&source, VectorShape::V16, 42);
        let kernel = CompiledKernel::compile(&prog, &base, &input).unwrap();
        for fill in [9u64, 10, 11] {
            let mut engine_img = base.clone();
            engine_img.fill_random(fill);
            let mut interp_img = engine_img.clone();
            kernel.run(&mut engine_img).unwrap();
            run_simd(&prog, &mut interp_img, &input).unwrap();
            assert_eq!(engine_img.first_difference(&interp_img), None, "fill {fill}");
        }
    }

    #[test]
    fn executor_names() {
        assert_eq!(NativeEngine.name(), "native");
        assert_eq!(Interpreter.name(), "interp");
    }

    #[test]
    fn disassembly_lists_sections_and_baked_offsets() {
        let prog = compile_prog(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let img = MemoryImage::with_seed(&source, VectorShape::V16, 1);
        let kernel = CompiledKernel::compile(&prog, &img, &RunInput::with_ub(100)).unwrap();
        let dis = kernel.disassembly();
        assert!(dis.starts_with("; kernel: V=16 D=4 B=4 ub=100"));
        assert!(dis.contains("prologue (i = 0):"));
        assert!(dis.contains("epilogue"));
        assert!(dis.contains("load.chunk"));
        assert!(dis.contains("/iter"));
    }
}
