//! A sharded, lock-striped, LRU-bounded cache of baked
//! [`CompiledKernel`]s, shared across sweep workers and server threads.
//!
//! The paper's pipeline front-loads all alignment reasoning into
//! compile time, which makes the baked kernel the natural unit to
//! cache: it depends only on *(program, runtime input, memory layout)*
//! and never on the image contents, so any job with the same key can
//! reuse it byte-for-byte. Earlier revisions kept one slot per sweep
//! worker; this module replaces that with a process-wide concurrent
//! cache so hits cross worker — and, in `simdize serve`, request —
//! boundaries:
//!
//! * **Keying.** A [`CacheKey`] is a 64-bit program fingerprint (FNV-1a
//!   over the structural [`SimdProgram`] listing, which embeds the
//!   placement policy and codegen scheme), the [`RunInput`], a
//!   [`LayoutSig`] (shape, element type, image length, every array
//!   base), and the execution [`KernelBackend`] — for the intrinsics
//!   backend that includes the dispatched [`IsaLevel`], so an AVX2
//!   lowering and an SSE2 lowering of the same program never collide,
//!   within a sweep or across server requests. Equality is checked on
//!   the full key, so fingerprint collisions degrade to misses of
//!   correctness-irrelevant cost.
//! * **Sharding.** Entries are striped over `shards` independent
//!   mutexes selected by key hash; concurrent workers only contend
//!   when they touch the same stripe.
//! * **Bounding.** Each shard holds at most `capacity_per_shard`
//!   entries and evicts least-recently-used. Sweeps over runtime
//!   alignments produce one layout per seed, so an unbounded cache
//!   would grow linearly with the seed count.
//! * **Counters.** Hits, misses, evictions and per-shard occupancy are
//!   exposed via [`KernelCache::stats`] and surfaced through
//!   `SweepStats`, the sweep summary line and the server's `stats`
//!   response.
//!
//! Bakes happen *outside* the shard lock: two workers missing the same
//! key concurrently both bake and the second insert wins, trading a
//! rare duplicated compile for never blocking a stripe on compilation.

use crate::kernel::{CompiledKernel, KernelOptions, PredecodedKernel};
use crate::native::{IsaLevel, SimdKernel};
use simdize_codegen::SimdProgram;
use simdize_ir::{ArrayId, ScalarType};
use simdize_vm::{ExecError, MemoryImage, RunInput};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A 64-bit structural fingerprint of a [`SimdProgram`]: FNV-1a over
/// its canonical listing, which encodes the source loop, the placement
/// policy's shift choices and every codegen decision. Structurally
/// equal programs fingerprint equal; the cache still compares full
/// keys, so a collision can only cost a duplicated bake.
pub fn program_fingerprint(program: &SimdProgram) -> u64 {
    fnv1a(program.to_string().as_bytes(), FNV_OFFSET)
}

/// The layout half of a cache key: everything
/// [`CompiledKernel::layout_matches`] checks, captured by value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutSig {
    shape_bytes: u32,
    elem: ScalarType,
    image_len: usize,
    bases: Vec<u64>,
}

impl LayoutSig {
    /// Captures the placement of the first `narrays` arrays of `image`.
    pub fn of(image: &MemoryImage, narrays: usize) -> LayoutSig {
        LayoutSig {
            shape_bytes: image.shape().bytes(),
            elem: image.elem(),
            image_len: image.bytes().len(),
            bases: (0..narrays)
                .map(|k| image.base_of(ArrayId::from_index(k)))
                .collect(),
        }
    }
}

/// Which execution backend a cached kernel was lowered for. The
/// intrinsics backend carries its dispatched [`IsaLevel`]: the same
/// program lowered at two tiers is two different artifacts and must
/// occupy two cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The trace-fused interpreter tier ([`CompiledKernel`]).
    Baked,
    /// The `std::arch` intrinsics tier ([`SimdKernel`]) at one ISA.
    Simd(IsaLevel),
}

impl KernelBackend {
    /// Stable bytes for the shard-selection hash.
    fn tag(self) -> [u8; 2] {
        match self {
            KernelBackend::Baked => [0xB0, 0x00],
            KernelBackend::Simd(isa) => {
                let level = match isa {
                    IsaLevel::Scalar => 0,
                    IsaLevel::Sse2 => 1,
                    IsaLevel::Avx2 => 2,
                    IsaLevel::Neon => 3,
                };
                [0x51, level]
            }
        }
    }
}

/// What one baked kernel was compiled for. Two jobs with equal keys
/// produce byte-identical kernels (the image *contents* are not part
/// of the key because baking never reads them — only array placement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    program: u64,
    input: RunInput,
    layout: LayoutSig,
    backend: KernelBackend,
}

impl CacheKey {
    /// A key for `program_fingerprint` baked against `input` on the
    /// layout of `image` (first `narrays` arrays), for the trace-fused
    /// interpreter backend.
    pub fn new(
        program_fingerprint: u64,
        input: &RunInput,
        image: &MemoryImage,
        narrays: usize,
    ) -> CacheKey {
        CacheKey::for_backend(
            program_fingerprint,
            input,
            image,
            narrays,
            KernelBackend::Baked,
        )
    }

    /// [`new`](CacheKey::new) with an explicit [`KernelBackend`].
    pub fn for_backend(
        program_fingerprint: u64,
        input: &RunInput,
        image: &MemoryImage,
        narrays: usize,
        backend: KernelBackend,
    ) -> CacheKey {
        CacheKey {
            program: program_fingerprint,
            input: input.clone(),
            layout: LayoutSig::of(image, narrays),
            backend,
        }
    }

    /// The shard-selection hash: FNV-1a over every key component.
    fn mix(&self) -> u64 {
        let mut h = fnv1a(&self.program.to_le_bytes(), FNV_OFFSET);
        h = fnv1a(&self.input.ub.to_le_bytes(), h);
        for p in &self.input.params {
            h = fnv1a(&p.to_le_bytes(), h);
        }
        h = fnv1a(&self.layout.shape_bytes.to_le_bytes(), h);
        h = fnv1a(&(self.layout.image_len as u64).to_le_bytes(), h);
        for b in &self.layout.bases {
            h = fnv1a(&b.to_le_bytes(), h);
        }
        fnv1a(&self.backend.tag(), h)
    }
}

/// What a [`KernelCache::get_or_bake`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// The kernel came out of the cache.
    pub hit: bool,
    /// Inserting the freshly baked kernel evicted an LRU entry.
    pub evicted: bool,
}

/// The cached artifact: which one is resident always agrees with the
/// key's [`KernelBackend`] (the insert paths pair them up).
#[derive(Clone)]
enum Payload {
    Baked(Arc<CompiledKernel>),
    Simd(Arc<SimdKernel>),
}

struct Entry {
    key: CacheKey,
    kernel: Payload,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: Vec<Entry>,
    tick: u64,
}

/// A point-in-time summary of the cache's counters and occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to bake.
    pub misses: u64,
    /// Entries displaced by LRU eviction.
    pub evictions: u64,
    /// Per-shard entry counts at snapshot time.
    pub occupancy: Vec<usize>,
    /// Per-shard capacity.
    pub capacity_per_shard: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups, or 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Total entries resident across every shard.
    pub fn occupied(&self) -> usize {
        self.occupancy.iter().sum()
    }
}

/// The sharded concurrent baked-kernel cache.
pub struct KernelCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for KernelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .finish_non_exhaustive()
    }
}

impl Default for KernelCache {
    fn default() -> KernelCache {
        KernelCache::new(8, 32)
    }
}

impl KernelCache {
    /// A cache striped over `shards` mutexes holding at most
    /// `capacity_per_shard` kernels each. Both are clamped to ≥ 1.
    pub fn new(shards: usize, capacity_per_shard: usize) -> KernelCache {
        let shards = shards.max(1);
        KernelCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.mix() % self.shards.len() as u64) as usize]
    }

    fn get_payload(&self, key: &CacheKey) -> Option<Payload> {
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.iter_mut().find(|e| &e.key == key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.kernel.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks a trace-fused-backend `key` up, bumping its LRU stamp on
    /// a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CompiledKernel>> {
        match self.get_payload(key)? {
            Payload::Baked(kernel) => Some(kernel),
            // Key backends and payloads are paired by the insert
            // paths; a Simd payload under a Baked key cannot happen.
            Payload::Simd(_) => None,
        }
    }

    /// Looks an intrinsics-backend `key` up, bumping its LRU stamp on
    /// a hit.
    pub fn get_simd(&self, key: &CacheKey) -> Option<Arc<SimdKernel>> {
        match self.get_payload(key)? {
            Payload::Simd(kernel) => Some(kernel),
            Payload::Baked(_) => None,
        }
    }

    /// Inserts (or replaces) `key`, evicting the shard's LRU entry when
    /// full. Returns whether an eviction happened.
    pub fn insert(&self, key: CacheKey, kernel: Arc<CompiledKernel>) -> bool {
        self.insert_payload(key, Payload::Baked(kernel))
    }

    /// [`insert`](KernelCache::insert) for an intrinsics-tier kernel.
    pub fn insert_simd(&self, key: CacheKey, kernel: Arc<SimdKernel>) -> bool {
        self.insert_payload(key, Payload::Simd(kernel))
    }

    fn insert_payload(&self, key: CacheKey, kernel: Payload) -> bool {
        let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.entries.iter_mut().find(|e| e.key == key) {
            // A racing worker baked the same key first; refresh it.
            entry.kernel = kernel;
            entry.last_used = tick;
            return false;
        }
        let mut evicted = false;
        if shard.entries.len() >= self.capacity_per_shard {
            let lru = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("full shard is nonempty");
            shard.entries.swap_remove(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            evicted = true;
        }
        shard.entries.push(Entry {
            key,
            kernel,
            last_used: tick,
        });
        evicted
    }

    /// The cached kernel for *(program, input, layout)*, baking and
    /// inserting on a miss. The bake runs outside the shard lock.
    ///
    /// # Errors
    ///
    /// Propagates [`PredecodedKernel::bake`] failures; nothing is
    /// inserted on error.
    pub fn get_or_bake(
        &self,
        program_fingerprint: u64,
        pre: &PredecodedKernel,
        image: &MemoryImage,
        input: &RunInput,
        opts: &KernelOptions,
    ) -> Result<(Arc<CompiledKernel>, Lookup), ExecError> {
        let key = CacheKey::new(program_fingerprint, input, image, pre.narrays());
        if let Some(kernel) = self.get(&key) {
            return Ok((
                kernel,
                Lookup {
                    hit: true,
                    evicted: false,
                },
            ));
        }
        let kernel = Arc::new(pre.bake(image, input, opts)?);
        let evicted = self.insert(key, Arc::clone(&kernel));
        Ok((kernel, Lookup { hit: false, evicted }))
    }

    /// The cached *intrinsics-lowered* kernel for *(program, input,
    /// layout, ISA)*, baking, lowering for `isa` and inserting on a
    /// miss. Distinct ISA tiers occupy distinct entries — a request
    /// dispatched at AVX2 never reuses an SSE2 lowering or vice versa.
    ///
    /// # Errors
    ///
    /// Propagates [`PredecodedKernel::bake`] failures; nothing is
    /// inserted on error.
    pub fn get_or_bake_simd(
        &self,
        program_fingerprint: u64,
        pre: &PredecodedKernel,
        image: &MemoryImage,
        input: &RunInput,
        opts: &KernelOptions,
        isa: IsaLevel,
    ) -> Result<(Arc<SimdKernel>, Lookup), ExecError> {
        let key = CacheKey::for_backend(
            program_fingerprint,
            input,
            image,
            pre.narrays(),
            KernelBackend::Simd(isa),
        );
        if let Some(kernel) = self.get_simd(&key) {
            return Ok((
                kernel,
                Lookup {
                    hit: true,
                    evicted: false,
                },
            ));
        }
        let kernel = Arc::new(SimdKernel::lower(&pre.bake(image, input, opts)?, isa));
        let evicted = self.insert_simd(key, Arc::clone(&kernel));
        Ok((kernel, Lookup { hit: false, evicted }))
    }

    /// Current counters and per-shard occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            occupancy: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
                .collect(),
            capacity_per_shard: self.capacity_per_shard,
        }
    }

    /// Drops every entry and zeroes the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            shard.entries.clear();
            shard.tick = 0;
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions, ReuseMode};
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    fn program(src: &str, policy: Policy) -> SimdProgram {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(policy)
            .unwrap();
        generate(
            &g,
            &CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline),
        )
        .unwrap()
    }

    const SRC: &str = "arrays { a: i32[256] @ 0; b: i32[256] @ 4; }
                       for i in 0..ub { a[i] = b[i+1]; }";

    fn setup(seed: u64) -> (SimdProgram, PredecodedKernel, MemoryImage, RunInput) {
        let prog = program(SRC, Policy::Zero);
        let pre = PredecodedKernel::new(&prog).unwrap();
        let image = MemoryImage::with_seed(prog.source(), VectorShape::V16, seed);
        (prog, pre, image, RunInput::with_ub(100))
    }

    #[test]
    fn fingerprints_distinguish_policies_not_clones() {
        // Distinct known misalignments: Zero normalizes every stream to
        // offset 0 while Eager shifts straight to the store alignment,
        // so the generated programs (and fingerprints) must differ.
        let src = "arrays { a: i32[256] @ 8; b: i32[256] @ 4; c: i32[256] @ 12; }
                   for i in 0..ub { a[i] = b[i+1] + c[i+3]; }";
        let a = program(src, Policy::Zero);
        let b = a.clone();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
        let eager = program(src, Policy::Eager);
        assert_ne!(
            program_fingerprint(&a),
            program_fingerprint(&eager),
            "policies generate different programs and must key separately"
        );
    }

    #[test]
    fn hit_after_miss_returns_same_kernel() {
        let (prog, pre, image, input) = setup(1);
        let fp = program_fingerprint(&prog);
        let cache = KernelCache::new(4, 8);
        let opts = KernelOptions::new().disassembly(false);
        let (k1, l1) = cache.get_or_bake(fp, &pre, &image, &input, &opts).unwrap();
        assert!(!l1.hit);
        let (k2, l2) = cache.get_or_bake(fp, &pre, &image, &input, &opts).unwrap();
        assert!(l2.hit);
        assert!(Arc::ptr_eq(&k1, &k2), "hit must share the baked kernel");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(stats.occupied(), 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_inputs_and_layouts_key_separately() {
        let (prog, pre, image, input) = setup(1);
        let fp = program_fingerprint(&prog);
        let cache = KernelCache::new(4, 8);
        let opts = KernelOptions::new().disassembly(false);
        cache.get_or_bake(fp, &pre, &image, &input, &opts).unwrap();
        // Different trip count: distinct key.
        let (_, l) = cache
            .get_or_bake(fp, &pre, &image, &RunInput::with_ub(60), &opts)
            .unwrap();
        assert!(!l.hit);
        // Same program and input, same layout (known alignments): hit
        // even from a *different* image with the same placement.
        let refill = MemoryImage::with_seed(prog.source(), VectorShape::V16, 999);
        let (_, l) = cache.get_or_bake(fp, &pre, &refill, &input, &opts).unwrap();
        assert!(l.hit, "layout-equal image must hit");
        assert_eq!(cache.stats().occupied(), 2);
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        let (prog, pre, image, _) = setup(1);
        let fp = program_fingerprint(&prog);
        // One shard, capacity 2: the third distinct input evicts the
        // least recently used of the first two.
        let cache = KernelCache::new(1, 2);
        let opts = KernelOptions::new().disassembly(false);
        let inputs: Vec<RunInput> = (0..3).map(|k| RunInput::with_ub(50 + k)).collect();
        cache.get_or_bake(fp, &pre, &image, &inputs[0], &opts).unwrap();
        cache.get_or_bake(fp, &pre, &image, &inputs[1], &opts).unwrap();
        // Touch input 0 so input 1 is LRU.
        let (_, l) = cache.get_or_bake(fp, &pre, &image, &inputs[0], &opts).unwrap();
        assert!(l.hit);
        let (_, l) = cache.get_or_bake(fp, &pre, &image, &inputs[2], &opts).unwrap();
        assert!(!l.hit && l.evicted);
        let (_, l) = cache.get_or_bake(fp, &pre, &image, &inputs[0], &opts).unwrap();
        assert!(l.hit, "recently used entry must survive eviction");
        let (_, l) = cache.get_or_bake(fp, &pre, &image, &inputs[1], &opts).unwrap();
        assert!(!l.hit, "LRU entry must have been evicted");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.occupancy, vec![2]);
        assert_eq!(stats.capacity_per_shard, 2);
    }

    #[test]
    fn concurrent_lookups_share_one_bake_per_key() {
        let (prog, pre, image, _) = setup(1);
        let fp = program_fingerprint(&prog);
        let cache = KernelCache::new(8, 32);
        let opts = KernelOptions::new().disassembly(false);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..32u64 {
                        let input = RunInput::with_ub(50 + (k % 4));
                        let (kernel, _) = cache
                            .get_or_bake(fp, &pre, &image, &input, &opts)
                            .unwrap();
                        let mut img = image.clone();
                        kernel.run(&mut img).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 32);
        assert_eq!(stats.occupied(), 4, "4 distinct keys resident");
        // Racing first-touch bakes may duplicate, but never exceed one
        // per thread per key.
        assert!(stats.misses >= 4 && stats.misses <= 32, "{stats:?}");
        cache.clear();
        let cleared = cache.stats();
        assert_eq!(cleared.occupied(), 0);
        assert_eq!(cleared.hits + cleared.misses + cleared.evictions, 0);
    }

    #[test]
    fn bake_errors_do_not_populate() {
        let (prog, pre, image, _) = setup(1);
        let fp = program_fingerprint(&prog);
        let cache = KernelCache::new(2, 4);
        let opts = KernelOptions::new();
        // figure-style loop with a declared runtime ub has no params;
        // force a trip mismatch via a fixed-trip program instead.
        let fixed = program(
            "arrays { a: i32[256] @ 0; b: i32[256] @ 4; }
             for i in 0..100 { a[i] = b[i+1]; }",
            Policy::Zero,
        );
        let fixed_pre = PredecodedKernel::new(&fixed).unwrap();
        let fixed_img = MemoryImage::with_seed(fixed.source(), VectorShape::V16, 3);
        let bad = RunInput::with_ub(7);
        assert!(cache
            .get_or_bake(program_fingerprint(&fixed), &fixed_pre, &fixed_img, &bad, &opts)
            .is_err());
        assert_eq!(cache.stats().occupied(), 0);
        // The good path still works afterwards.
        let (_, l) = cache
            .get_or_bake(fp, &pre, &image, &RunInput::with_ub(100), &opts)
            .unwrap();
        assert!(!l.hit);
        assert_eq!(cache.stats().occupied(), 1);
    }

    #[test]
    fn capacity_one_evicts_in_strict_alternation() {
        // The degenerate LRU: capacity 1 means every distinct key
        // displaces the previous one, so an A/B/A/B access pattern
        // never hits and evicts on every insert after the first.
        let (prog, pre, image, _) = setup(1);
        let fp = program_fingerprint(&prog);
        let cache = KernelCache::new(1, 1);
        let opts = KernelOptions::new().disassembly(false);
        let a = RunInput::with_ub(50);
        let b = RunInput::with_ub(60);
        let (_, l) = cache.get_or_bake(fp, &pre, &image, &a, &opts).unwrap();
        assert!(!l.hit && !l.evicted, "first insert fills the empty slot");
        for round in 0..3 {
            for input in [&b, &a] {
                let (_, l) = cache.get_or_bake(fp, &pre, &image, input, &opts).unwrap();
                assert!(!l.hit && l.evicted, "round {round}: thrashing never hits");
            }
        }
        // Re-touching the key that is actually resident does hit.
        let (_, l) = cache.get_or_bake(fp, &pre, &image, &a, &opts).unwrap();
        assert!(l.hit);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 7, 6));
        assert_eq!(stats.occupied(), 1);
    }

    #[test]
    fn same_key_race_converges_to_one_entry_with_identical_bytes() {
        // Two threads race get_or_bake on the *same* key: at most both
        // bake (the insert refreshes), exactly one entry stays
        // resident, and whichever kernel each thread got produces
        // byte-identical output.
        let (prog, pre, image, input) = setup(5);
        let fp = program_fingerprint(&prog);
        let cache = KernelCache::new(1, 4);
        let opts = KernelOptions::new().disassembly(false);
        let results: Vec<MemoryImage> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    s.spawn(|| {
                        let (kernel, _) = cache
                            .get_or_bake(fp, &pre, &image, &input, &opts)
                            .unwrap();
                        let mut img = image.clone();
                        kernel.run(&mut img).unwrap();
                        img
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            results[0].first_difference(&results[1]),
            None,
            "racing bakes of one key must produce identical bytes"
        );
        let stats = cache.stats();
        assert_eq!(stats.occupied(), 1, "one key, one resident entry");
        assert_eq!(stats.hits + stats.misses, 2);
        assert_eq!(stats.evictions, 0, "a same-key refresh is not an eviction");
        // The surviving entry serves subsequent lookups.
        let (_, l) = cache.get_or_bake(fp, &pre, &image, &input, &opts).unwrap();
        assert!(l.hit);
    }

    #[test]
    fn backends_and_isa_levels_key_separately() {
        // The same (program, input, layout) cached for the fused
        // interpreter, the scalar-tier lowering and the best host tier
        // must be three distinct residents — and the two lowerings must
        // pin their distinct ISA levels. Occupancy/eviction invariants
        // from the plain-backend tests keep holding throughout.
        let (prog, pre, image, input) = setup(1);
        let fp = program_fingerprint(&prog);
        let cache = KernelCache::new(1, 8);
        let opts = KernelOptions::new().disassembly(false);
        let (baked, l) = cache.get_or_bake(fp, &pre, &image, &input, &opts).unwrap();
        assert!(!l.hit);
        let (scalar, l) = cache
            .get_or_bake_simd(fp, &pre, &image, &input, &opts, IsaLevel::Scalar)
            .unwrap();
        assert!(!l.hit, "scalar lowering is not the baked kernel");
        let best = IsaLevel::host_best();
        let (fast, l) = cache
            .get_or_bake_simd(fp, &pre, &image, &input, &opts, best)
            .unwrap();
        if best == IsaLevel::Scalar {
            assert!(l.hit, "scalar-only host: same tier, same entry");
        } else {
            assert!(!l.hit, "two ISA levels are two entries");
            assert_ne!(scalar.isa(), fast.isa());
        }
        let expected = if best == IsaLevel::Scalar { 2 } else { 3 };
        let stats = cache.stats();
        assert_eq!(stats.occupied(), expected);
        assert_eq!(stats.misses - stats.evictions, stats.occupied() as u64);
        // Every variant hits its own entry on re-lookup and all three
        // execute to identical bytes.
        let (_, l) = cache.get_or_bake(fp, &pre, &image, &input, &opts).unwrap();
        assert!(l.hit);
        let (_, l) = cache
            .get_or_bake_simd(fp, &pre, &image, &input, &opts, IsaLevel::Scalar)
            .unwrap();
        assert!(l.hit);
        let mut want = image.clone();
        baked.run(&mut want).unwrap();
        for kernel in [&scalar, &fast] {
            let mut got = image.clone();
            kernel.run(&mut got).unwrap();
            assert_eq!(got.first_difference(&want), None, "{}", kernel.isa());
        }
    }

    #[test]
    fn simd_entries_participate_in_lru_eviction() {
        // Mixed-backend entries share the same LRU arena: with capacity
        // 2, inserting baked + two lowerings evicts the oldest.
        let (prog, pre, image, input) = setup(2);
        let fp = program_fingerprint(&prog);
        let cache = KernelCache::new(1, 2);
        let opts = KernelOptions::new().disassembly(false);
        cache.get_or_bake(fp, &pre, &image, &input, &opts).unwrap();
        let (_, l) = cache
            .get_or_bake_simd(fp, &pre, &image, &input, &opts, IsaLevel::Scalar)
            .unwrap();
        assert!(!l.hit && !l.evicted);
        let best = IsaLevel::host_best();
        if best == IsaLevel::Scalar {
            return; // no third distinct key available on this host
        }
        let (_, l) = cache
            .get_or_bake_simd(fp, &pre, &image, &input, &opts, best)
            .unwrap();
        assert!(!l.hit && l.evicted, "third key evicts the LRU baked entry");
        let (_, l) = cache.get_or_bake(fp, &pre, &image, &input, &opts).unwrap();
        assert!(!l.hit, "baked entry was the eviction victim");
        let stats = cache.stats();
        assert_eq!(stats.occupied(), 2);
        assert_eq!(stats.misses - stats.evictions, stats.occupied() as u64);
    }

    #[test]
    fn eviction_counter_matches_occupancy_delta() {
        // Inserts minus evictions must equal residents at every step:
        // the counters and the occupancy snapshot describe the same
        // history.
        let (prog, pre, image, _) = setup(1);
        let fp = program_fingerprint(&prog);
        let cache = KernelCache::new(1, 3);
        let opts = KernelOptions::new().disassembly(false);
        for k in 0..10u64 {
            let input = RunInput::with_ub(40 + k);
            let (_, l) = cache.get_or_bake(fp, &pre, &image, &input, &opts).unwrap();
            assert!(!l.hit, "all keys distinct");
            let stats = cache.stats();
            assert_eq!(
                stats.misses - stats.evictions,
                stats.occupied() as u64,
                "after insert {k}: {stats:?}"
            );
            assert_eq!(l.evicted, k >= 3, "evictions start when capacity fills");
        }
        let stats = cache.stats();
        assert_eq!(stats.occupied(), 3);
        assert_eq!(stats.evictions, 7);
        cache.clear();
        assert_eq!(cache.stats().occupied(), 0);
    }
}
