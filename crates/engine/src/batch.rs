//! Parallel batch sweeps: run many `(program, memory seed)` jobs across
//! scoped worker threads, each job executed by the engine and verified
//! against the scalar oracle, with per-job [`RunStats`].
//!
//! The runner uses `std::thread::scope` so jobs can be borrowed rather
//! than moved, and a shared atomic cursor so threads self-schedule —
//! long jobs (large trip counts) don't stall a statically partitioned
//! worker.
//!
//! Sweeps repeat the same handful of programs over many seeds, so the
//! default path ([`SweepOptions::new`]) shares compilation work:
//!
//! * each *distinct* program (by structural equality) is pre-decoded
//!   exactly once into a [`PredecodedKernel`] before the workers start;
//! * each worker keeps one scratch engine image and one scratch oracle
//!   image, re-seeded in place per job ([`MemoryImage::reseed`])
//!   instead of allocating fresh images;
//! * baked [`CompiledKernel`]s live in a sharded, LRU-bounded
//!   [`KernelCache`] keyed by *(program fingerprint, runtime input,
//!   memory layout)* and shared by **every** worker — the first worker
//!   to bake a kernel makes it a hit for all of them, so mixed-program
//!   sweeps no longer thrash the way the old per-worker single-slot
//!   cache did. [`run_sweep_shared`] accepts an external cache so a
//!   long-running caller (the `simdize serve` server) can reuse baked
//!   kernels *across* sweeps too.
//!
//! [`CacheMode::SlotPerWorker`] restores the legacy single-slot
//! per-worker cache — kept as the bench baseline the sharded cache is
//! measured against — and [`SweepOptions::uncached`] turns all sharing
//! off (full per-job compilation, fresh allocations).

use crate::cache::{program_fingerprint, KernelCache};
use crate::kernel::{CompiledKernel, KernelOptions, PredecodedKernel};
use crate::native::{IsaLevel, SimdKernel};
use simdize_codegen::SimdProgram;
use simdize_ir::VectorShape;
use simdize_telemetry as telemetry;
use simdize_vm::{run_scalar, ExecError, MemoryImage, RunInput, RunStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// One sweep job: a compiled program plus the seed that determines its
/// memory image (runtime misalignments and contents) and the runtime
/// inputs for the invocation.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The program to execute.
    pub program: SimdProgram,
    /// Seed for [`MemoryImage::with_seed`].
    pub seed: u64,
    /// Runtime trip count and parameter values.
    pub input: RunInput,
}

impl SweepJob {
    /// A job for `program` on the image seeded by `seed`, with the trip
    /// count taken from the loop when compile-time known and from `ub`
    /// otherwise.
    pub fn new(program: SimdProgram, seed: u64, ub: u64) -> SweepJob {
        let ub = program.source().trip().known().unwrap_or(ub);
        SweepJob {
            program,
            seed,
            input: RunInput::with_ub(ub),
        }
    }
}

/// The result of one sweep job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutcome {
    /// The job's memory seed.
    pub seed: u64,
    /// Dynamic instruction counts of the engine execution.
    pub stats: RunStats,
    /// Whether the engine's memory image matched the scalar oracle's
    /// byte for byte.
    pub verified: bool,
    /// Data elements produced (`statements × trip count`).
    pub data_produced: u64,
    /// The idealistic scalar instruction count for the same run.
    pub scalar_ideal: u64,
}

impl SweepOutcome {
    /// Speedup of the engine-executed simdized loop over the idealistic
    /// scalar baseline, in the paper's OPD terms.
    pub fn speedup(&self) -> f64 {
        self.scalar_ideal as f64 / self.stats.total() as f64
    }
}

/// Which baked-kernel cache a sweep's workers consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// The sharded concurrent [`KernelCache`], shared by every worker
    /// (and, via [`run_sweep_shared`], across sweeps).
    #[default]
    Shared,
    /// The legacy cache: each worker remembers only its own last baked
    /// kernel. Kept as the baseline the sharded cache is benchmarked
    /// against.
    SlotPerWorker,
}

/// Which execution tier a sweep's jobs run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepBackend {
    /// The trace-fused interpreter tier ([`CompiledKernel`]).
    #[default]
    Baked,
    /// The `std::arch` intrinsics tier ([`SimdKernel`]) at the ISA
    /// level [`IsaLevel::detect`] reports when the sweep starts.
    Simd,
}

/// How [`run_sweep_with`] schedules and caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker thread count (clamped to `[1, jobs.len()]`).
    pub threads: usize,
    /// Pre-decode each distinct program once before the workers start
    /// and cache baked kernels (per `cache`).
    pub share_predecode: bool,
    /// Reuse one scratch engine image and one scratch oracle image per
    /// worker, re-seeded in place per job. Only effective together with
    /// `share_predecode`.
    pub reuse_scratch: bool,
    /// Which baked-kernel cache to use. Only effective together with
    /// `share_predecode`.
    pub cache: CacheMode,
    /// Which execution tier runs the jobs.
    pub backend: SweepBackend,
}

impl SweepOptions {
    /// The default sweep configuration: every cache on, baked kernels
    /// in the sharded shared cache, fused-interpreter backend.
    pub fn new(threads: usize) -> SweepOptions {
        SweepOptions {
            threads,
            share_predecode: true,
            reuse_scratch: true,
            cache: CacheMode::Shared,
            backend: SweepBackend::Baked,
        }
    }

    /// Full per-job compilation with fresh allocations — the baseline
    /// the compilation cache is measured against.
    pub fn uncached(threads: usize) -> SweepOptions {
        SweepOptions {
            share_predecode: false,
            reuse_scratch: false,
            ..SweepOptions::new(threads)
        }
    }

    /// Selects the baked-kernel cache mode.
    pub fn cache_mode(mut self, cache: CacheMode) -> SweepOptions {
        self.cache = cache;
        self
    }

    /// Selects the execution tier.
    pub fn backend(mut self, backend: SweepBackend) -> SweepOptions {
        self.backend = backend;
        self
    }
}

/// The legacy single-slot cached artifact, one per worker.
enum SlotKernel {
    Baked(CompiledKernel),
    Simd(SimdKernel),
}

impl SlotKernel {
    fn layout_matches(&self, image: &MemoryImage) -> bool {
        match self {
            SlotKernel::Baked(k) => k.layout_matches(image),
            SlotKernel::Simd(k) => k.layout_matches(image),
        }
    }

    fn run(&self, image: &mut MemoryImage) -> Result<RunStats, ExecError> {
        match self {
            SlotKernel::Baked(k) => k.run(image),
            SlotKernel::Simd(k) => k.run(image),
        }
    }
}

/// Per-worker reusable state.
#[derive(Default)]
struct Scratch {
    engine: Option<MemoryImage>,
    oracle: Option<MemoryImage>,
    /// Legacy single-slot cache, used only in
    /// [`CacheMode::SlotPerWorker`].
    baked: Option<(usize, RunInput, SlotKernel)>,
}

/// One worker's job results (tagged with their original indices) plus
/// its local event tally.
type WorkerPartial = (Vec<(usize, Result<SweepOutcome, ExecError>)>, WorkerTally);

/// Per-worker event counts, merged into [`SweepStats`] when the sweep
/// finishes.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerTally {
    jobs: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    scratch_reseeds: u64,
}

/// What a sweep's caches and workers actually did, reported by
/// [`run_sweep_collect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepStats {
    /// Worker threads actually spawned (after clamping to the job
    /// count).
    pub workers: usize,
    /// Jobs whose baked kernel came out of the cache.
    pub cache_hits: u64,
    /// Jobs that had to bake (or, uncached, fully compile) a kernel.
    pub cache_misses: u64,
    /// Kernels displaced by LRU eviction during this sweep (always 0
    /// for the legacy single-slot and uncached modes).
    pub cache_evictions: u64,
    /// Kernels resident per cache shard when the sweep finished (empty
    /// unless the sharded cache was used).
    pub cache_occupancy: Vec<usize>,
    /// Jobs that re-seeded an existing scratch image instead of
    /// allocating a fresh one.
    pub scratch_reseeds: u64,
    /// Jobs completed by each worker, one entry per worker — the spread
    /// shows scheduling imbalance.
    pub jobs_per_worker: Vec<u64>,
}

impl SweepStats {
    /// Baked-kernel cache hits as a fraction of all jobs, or 0 for an
    /// empty sweep.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Kernels resident across every shard when the sweep finished.
    pub fn cache_occupied(&self) -> usize {
        self.cache_occupancy.iter().sum()
    }

    fn empty() -> SweepStats {
        SweepStats {
            workers: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_occupancy: Vec::new(),
            scratch_reseeds: 0,
            jobs_per_worker: Vec::new(),
        }
    }
}

/// Runs every job with the default caches on, distributing them over
/// `threads` scoped worker threads, and returns per-job outcomes in job
/// order. Shorthand for [`run_sweep_with`] with [`SweepOptions::new`].
pub fn run_sweep(jobs: &[SweepJob], threads: usize) -> Vec<Result<SweepOutcome, ExecError>> {
    run_sweep_with(jobs, SweepOptions::new(threads))
}

/// Runs every job per `opts` and returns per-job outcomes in job order.
/// Each job executes its program on the image seeded by its seed and
/// differentially verifies the result against [`run_scalar`] on an
/// identical image.
pub fn run_sweep_with(
    jobs: &[SweepJob],
    opts: SweepOptions,
) -> Vec<Result<SweepOutcome, ExecError>> {
    run_sweep_collect(jobs, opts).0
}

/// Like [`run_sweep_with`], but also reports what the sweep's caches
/// and workers did ([`SweepStats`]) — kernel-cache hits, misses and
/// evictions, shard occupancy, scratch-image reseeds and the
/// per-worker job distribution.
///
/// In [`CacheMode::Shared`] (the default) a fresh sweep-local
/// [`KernelCache`] is built; use [`run_sweep_shared`] to reuse kernels
/// across sweeps.
pub fn run_sweep_collect(
    jobs: &[SweepJob],
    opts: SweepOptions,
) -> (Vec<Result<SweepOutcome, ExecError>>, SweepStats) {
    if opts.share_predecode && opts.cache == CacheMode::Shared {
        let cache = KernelCache::new(opts.threads.clamp(1, 16), 32);
        sweep_inner(jobs, opts, Some(&cache))
    } else {
        sweep_inner(jobs, opts, None)
    }
}

/// Like [`run_sweep_collect`], but baked kernels go through `cache`,
/// which outlives the sweep: a server handling many sweep requests (or
/// a bench repeating a sweep) hits on every kernel the previous
/// request already baked. The reported [`SweepStats`] count only this
/// sweep's hits/misses/evictions; `cache_occupancy` reflects the
/// cache's (global) state as the sweep finished.
pub fn run_sweep_shared(
    jobs: &[SweepJob],
    opts: SweepOptions,
    cache: &KernelCache,
) -> (Vec<Result<SweepOutcome, ExecError>>, SweepStats) {
    sweep_inner(jobs, opts, Some(cache))
}

fn sweep_inner(
    jobs: &[SweepJob],
    opts: SweepOptions,
    cache: Option<&KernelCache>,
) -> (Vec<Result<SweepOutcome, ExecError>>, SweepStats) {
    if jobs.is_empty() {
        return (Vec::new(), SweepStats::empty());
    }
    let _span = telemetry::span("sweep");
    let threads = opts.threads.clamp(1, jobs.len());

    // One pre-decode (and one fingerprint) per distinct program, shared
    // by every worker.
    let mut templates: Vec<(&SimdProgram, u64, Result<PredecodedKernel, ExecError>)> = Vec::new();
    let mut job_template: Vec<usize> = Vec::with_capacity(jobs.len());
    if opts.share_predecode {
        for job in jobs {
            let idx = match templates.iter().position(|(p, _, _)| *p == &job.program) {
                Some(idx) => idx,
                None => {
                    templates.push((
                        &job.program,
                        program_fingerprint(&job.program),
                        PredecodedKernel::new(&job.program),
                    ));
                    templates.len() - 1
                }
            };
            job_template.push(idx);
        }
    }
    let templates = &templates;
    let job_template = &job_template;
    // One ISA detection per sweep, not per job: the env override and
    // feature probes are stable for the process lifetime.
    let isa = IsaLevel::detect();

    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    // If the sweep runs on behalf of a request scope, credit the
    // worker threads' spans to that request, not the global collector.
    let trace_ctx = telemetry::current_context();
    let partials: Vec<WorkerPartial> = thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let trace_ctx = trace_ctx.clone();
                    s.spawn(move || {
                        let _adopted = trace_ctx.map(telemetry::adopt_context);
                        let mut scratch = Scratch::default();
                        let mut tally = WorkerTally::default();
                        let mut mine = Vec::new();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= jobs.len() {
                                break;
                            }
                            let _span = telemetry::span("sweep.job");
                            tally.jobs += 1;
                            let res = if opts.share_predecode {
                                run_one_cached(
                                    &jobs[idx],
                                    job_template[idx],
                                    templates,
                                    &opts,
                                    cache,
                                    isa,
                                    &mut scratch,
                                    &mut tally,
                                )
                            } else {
                                tally.cache_misses += 1;
                                run_one(&jobs[idx], opts.backend, isa)
                            };
                            mine.push((idx, res));
                        }
                        (mine, tally)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
    let mut results: Vec<Option<Result<SweepOutcome, ExecError>>> =
        (0..jobs.len()).map(|_| None).collect();
    let mut stats = SweepStats {
        workers: threads,
        jobs_per_worker: Vec::with_capacity(threads),
        ..SweepStats::empty()
    };
    for (outcomes, tally) in partials {
        for (idx, outcome) in outcomes {
            results[idx] = Some(outcome);
        }
        stats.cache_hits += tally.cache_hits;
        stats.cache_misses += tally.cache_misses;
        stats.cache_evictions += tally.cache_evictions;
        stats.scratch_reseeds += tally.scratch_reseeds;
        stats.jobs_per_worker.push(tally.jobs);
    }
    if let Some(cache) = cache {
        stats.cache_occupancy = cache.stats().occupancy;
    }
    if telemetry::enabled() {
        telemetry::counter("sweep.kernel_cache.hit").add(stats.cache_hits);
        telemetry::counter("sweep.kernel_cache.miss").add(stats.cache_misses);
        telemetry::counter("sweep.kernel_cache.evict").add(stats.cache_evictions);
        telemetry::counter("sweep.scratch.reseed").add(stats.scratch_reseeds);
        telemetry::gauge("sweep.workers").set(stats.workers as u64);
        telemetry::gauge("sweep.kernel_cache.occupied").set(stats.cache_occupied() as u64);
        telemetry::tag("cache.hits", stats.cache_hits);
        telemetry::tag("cache.misses", stats.cache_misses);
        let jobs_hist = telemetry::histogram("sweep.worker.jobs");
        for &n in &stats.jobs_per_worker {
            jobs_hist.observe(n);
        }
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("every job index claimed exactly once"))
        .collect();
    (results, stats)
}

/// The uncached path: fresh images, full compile, per job.
fn run_one(
    job: &SweepJob,
    backend: SweepBackend,
    isa: IsaLevel,
) -> Result<SweepOutcome, ExecError> {
    let source = job.program.source();
    let mut engine_img = MemoryImage::with_seed(source, VectorShape::V16, job.seed);
    let mut oracle_img = engine_img.clone();
    let ub = source.trip().known().unwrap_or(job.input.ub);
    let kernel = CompiledKernel::compile(&job.program, &engine_img, &job.input)?;
    let stats = match backend {
        SweepBackend::Baked => kernel.run(&mut engine_img)?,
        SweepBackend::Simd => SimdKernel::lower(&kernel, isa).run(&mut engine_img)?,
    };
    let scalar_ideal = run_scalar(source, &mut oracle_img, ub, &job.input.params)?;
    Ok(SweepOutcome {
        seed: job.seed,
        stats,
        verified: engine_img.first_difference(&oracle_img).is_none(),
        data_produced: source.stmts().len() as u64 * ub,
        scalar_ideal,
    })
}

/// The cached path: shared pre-decode, per-worker scratch images and a
/// baked-kernel cache (sharded-shared or legacy per-worker slot).
/// Produces outcomes identical to [`run_one`] — `MemoryImage::reseed`
/// rebuilds exactly the image `with_seed` would, and a cached kernel is
/// only reused when the program, the runtime input and the memory
/// layout all match.
#[allow(clippy::too_many_arguments)]
fn run_one_cached(
    job: &SweepJob,
    tidx: usize,
    templates: &[(&SimdProgram, u64, Result<PredecodedKernel, ExecError>)],
    opts: &SweepOptions,
    cache: Option<&KernelCache>,
    isa: IsaLevel,
    scratch: &mut Scratch,
    tally: &mut WorkerTally,
) -> Result<SweepOutcome, ExecError> {
    let (_, fingerprint, pre) = &templates[tidx];
    let pre = pre.as_ref().map_err(|e| e.clone())?;
    let source = job.program.source();
    let shape = VectorShape::V16;

    let engine_img = match &mut scratch.engine {
        Some(img) if opts.reuse_scratch => {
            img.reseed(source, shape, job.seed);
            tally.scratch_reseeds += 1;
            img
        }
        slot => slot.insert(MemoryImage::with_seed(source, shape, job.seed)),
    };
    let oracle_img = match &mut scratch.oracle {
        Some(img) if opts.reuse_scratch => {
            // Copy the freshly seeded engine image instead of reseeding
            // independently: a memcpy is far cheaper than a second
            // element-by-element random fill.
            img.copy_from(engine_img);
            img
        }
        slot => slot.insert(engine_img.clone()),
    };

    let bake_opts = KernelOptions::new().disassembly(false);
    let stats = match cache {
        Some(cache) => {
            let (stats, lookup) = match opts.backend {
                SweepBackend::Baked => {
                    let (kernel, lookup) =
                        cache.get_or_bake(*fingerprint, pre, engine_img, &job.input, &bake_opts)?;
                    (kernel.run(engine_img)?, lookup)
                }
                SweepBackend::Simd => {
                    let (kernel, lookup) = cache.get_or_bake_simd(
                        *fingerprint,
                        pre,
                        engine_img,
                        &job.input,
                        &bake_opts,
                        isa,
                    )?;
                    (kernel.run(engine_img)?, lookup)
                }
            };
            if lookup.hit {
                tally.cache_hits += 1;
            } else {
                tally.cache_misses += 1;
            }
            tally.cache_evictions += u64::from(lookup.evicted);
            stats
        }
        None => {
            let cache_hit = matches!(
                &scratch.baked,
                Some((t, input, k)) if *t == tidx && input == &job.input && k.layout_matches(engine_img)
            );
            if cache_hit {
                tally.cache_hits += 1;
            } else {
                tally.cache_misses += 1;
                let kernel = pre.bake(engine_img, &job.input, &bake_opts)?;
                let slot = match opts.backend {
                    SweepBackend::Baked => SlotKernel::Baked(kernel),
                    SweepBackend::Simd => SlotKernel::Simd(SimdKernel::lower(&kernel, isa)),
                };
                scratch.baked = Some((tidx, job.input.clone(), slot));
            }
            let kernel = &scratch.baked.as_ref().expect("just populated").2;
            kernel.run(engine_img)?
        }
    };

    let ub = source.trip().known().unwrap_or(job.input.ub);
    let scalar_ideal = run_scalar(source, oracle_img, ub, &job.input.params)?;
    Ok(SweepOutcome {
        seed: job.seed,
        stats,
        verified: engine_img.first_difference(oracle_img).is_none(),
        data_produced: source.stmts().len() as u64 * ub,
        scalar_ideal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions, ReuseMode};
    use simdize_ir::parse_program;
    use simdize_reorg::{Policy, ReorgGraph};

    fn program(src: &str) -> SimdProgram {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        generate(
            &g,
            &CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline),
        )
        .unwrap()
    }

    const RUNTIME: &str = "arrays { a: i32[512] @ ?; b: i32[512] @ ?; c: i32[512] @ ?; }
                           for i in 0..ub { a[i] = b[i+1] + c[i+3]; }";

    const KNOWN: &str = "arrays { a: i32[512] @ 0; b: i32[512] @ 4; }
                         for i in 0..ub { a[i] = b[i+1]; }";

    #[test]
    fn sweep_verifies_every_seed() {
        let prog = program(RUNTIME);
        let jobs: Vec<SweepJob> = (0..24)
            .map(|seed| SweepJob::new(prog.clone(), seed, 500))
            .collect();
        let outcomes = run_sweep(&jobs, 4);
        assert_eq!(outcomes.len(), 24);
        for (seed, outcome) in outcomes.into_iter().enumerate() {
            let o = outcome.unwrap();
            assert_eq!(o.seed, seed as u64);
            assert!(o.verified, "seed {seed} failed verification");
            assert!(o.speedup() > 1.0, "seed {seed} not profitable");
            assert_eq!(o.data_produced, 500);
        }
    }

    #[test]
    fn thread_counts_agree() {
        let prog = program(RUNTIME);
        let jobs: Vec<SweepJob> = (0..9)
            .map(|seed| SweepJob::new(prog.clone(), seed * 7, 200))
            .collect();
        let serial = run_sweep(&jobs, 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(run_sweep(&jobs, threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn all_cache_modes_agree() {
        // KNOWN alignments: every seed shares one layout, so baked
        // kernels are reused across jobs. RUNTIME alignments: layouts
        // differ per seed, exercising re-bake over reseeded scratch.
        for src in [KNOWN, RUNTIME] {
            let prog = program(src);
            let jobs: Vec<SweepJob> = (0..16)
                .map(|seed| SweepJob::new(prog.clone(), seed * 3 + 1, 300))
                .collect();
            let shared = run_sweep_with(&jobs, SweepOptions::new(3));
            let slot = run_sweep_with(
                &jobs,
                SweepOptions::new(3).cache_mode(CacheMode::SlotPerWorker),
            );
            let uncached = run_sweep_with(&jobs, SweepOptions::uncached(3));
            assert_eq!(shared, uncached);
            assert_eq!(slot, uncached);
            for o in shared {
                assert!(o.unwrap().verified);
            }
        }
    }

    #[test]
    fn simd_backend_agrees_with_baked_across_modes() {
        // The intrinsics backend must produce exactly the outcomes of
        // the fused interpreter — stats included, since they are fixed
        // analytically — in every cache configuration.
        for src in [KNOWN, RUNTIME] {
            let prog = program(src);
            let jobs: Vec<SweepJob> = (0..12)
                .map(|seed| SweepJob::new(prog.clone(), seed * 5 + 2, 300))
                .collect();
            let baked = run_sweep_with(&jobs, SweepOptions::new(3));
            for opts in [
                SweepOptions::new(3).backend(SweepBackend::Simd),
                SweepOptions::new(3)
                    .backend(SweepBackend::Simd)
                    .cache_mode(CacheMode::SlotPerWorker),
                SweepOptions::uncached(3).backend(SweepBackend::Simd),
            ] {
                assert_eq!(run_sweep_with(&jobs, opts), baked, "{opts:?}");
            }
        }
    }

    #[test]
    fn simd_backend_caches_lowered_kernels() {
        // A shared-cache simd sweep bakes+lowers once per (program,
        // layout) and hits afterwards, exactly like the baked backend —
        // and a subsequent *baked* sweep over the same external cache
        // does not collide with the simd entries.
        let prog = program(KNOWN);
        let jobs: Vec<SweepJob> = (0..8)
            .map(|seed| SweepJob::new(prog.clone(), seed, 300))
            .collect();
        let cache = KernelCache::new(2, 16);
        let opts = SweepOptions::new(2).backend(SweepBackend::Simd);
        let (outcomes, stats) = run_sweep_shared(&jobs, opts, &cache);
        assert!(outcomes.into_iter().all(|o| o.unwrap().verified));
        assert_eq!(stats.cache_misses, 1, "one lowering per program");
        assert_eq!(stats.cache_hits, 7);
        // Same cache, baked backend: distinct key space, so it misses
        // once more instead of picking up the simd entry.
        let (_, baked) = run_sweep_shared(&jobs, SweepOptions::new(2), &cache);
        assert_eq!(baked.cache_misses, 1);
        assert_eq!(cache.stats().occupied(), 2);
    }

    #[test]
    fn mixed_program_sweep_interleaves_templates() {
        // Alternating templates on one worker force the scratch images
        // to be re-laid-out between jobs; the legacy slot cache misses
        // every job while the sharded cache holds both kernels.
        let a = program(KNOWN);
        let b = program(RUNTIME);
        let jobs: Vec<SweepJob> = (0..10)
            .map(|k| {
                let prog = if k % 2 == 0 { a.clone() } else { b.clone() };
                SweepJob::new(prog, k as u64, 250)
            })
            .collect();
        let shared = run_sweep_with(&jobs, SweepOptions::new(1));
        let uncached = run_sweep_with(&jobs, SweepOptions::uncached(1));
        assert_eq!(shared, uncached);
        for o in shared {
            assert!(o.unwrap().verified);
        }
    }

    #[test]
    fn shared_cache_beats_slot_on_mixed_programs() {
        // Two interleaved KNOWN-layout programs on one worker: the slot
        // cache misses every program switch; the sharded cache bakes
        // each (program, layout) once and hits everything after.
        let a = program(KNOWN);
        let b = program("arrays { a: i32[512] @ 0; c: i32[512] @ 8; }
                         for i in 0..ub { a[i] = c[i+2]; }");
        let jobs: Vec<SweepJob> = (0..12)
            .map(|k| {
                let prog = if k % 2 == 0 { a.clone() } else { b.clone() };
                SweepJob::new(prog, k as u64, 250)
            })
            .collect();
        let (_, slot) = run_sweep_collect(
            &jobs,
            SweepOptions::new(1).cache_mode(CacheMode::SlotPerWorker),
        );
        assert_eq!(slot.cache_misses, 12, "slot cache thrashes");
        let (_, shared) = run_sweep_collect(&jobs, SweepOptions::new(1));
        assert_eq!(shared.cache_misses, 2, "one bake per program");
        assert_eq!(shared.cache_hits, 10);
        assert_eq!(shared.cache_occupied(), 2);
        assert!(shared.cache_hit_rate() > slot.cache_hit_rate());
    }

    #[test]
    fn external_cache_carries_hits_across_sweeps() {
        let prog = program(KNOWN);
        let jobs: Vec<SweepJob> = (0..6)
            .map(|seed| SweepJob::new(prog.clone(), seed, 300))
            .collect();
        let cache = KernelCache::new(4, 16);
        let (_, first) = run_sweep_shared(&jobs, SweepOptions::new(2), &cache);
        assert_eq!(first.cache_misses, 1);
        // The second sweep over the same program misses nothing: the
        // kernel survived in the shared cache.
        let (outcomes, second) = run_sweep_shared(&jobs, SweepOptions::new(2), &cache);
        assert_eq!(second.cache_misses, 0, "{second:?}");
        assert_eq!(second.cache_hits, 6);
        for o in outcomes {
            assert!(o.unwrap().verified);
        }
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(run_sweep(&[], 4).is_empty());
        let (outcomes, stats) = run_sweep_collect(&[], SweepOptions::new(4));
        assert!(outcomes.is_empty());
        assert_eq!(stats.workers, 0);
        assert_eq!(stats.cache_hit_rate(), 0.0);
        assert_eq!(stats.cache_occupied(), 0);
    }

    #[test]
    fn sweep_stats_count_cache_traffic() {
        // KNOWN alignments on one worker: the first job bakes, every
        // later job reuses the kernel — 1 miss, N−1 hits, and each job
        // after the first reseeds the scratch image in place.
        let prog = program(KNOWN);
        let jobs: Vec<SweepJob> = (0..12)
            .map(|seed| SweepJob::new(prog.clone(), seed, 300))
            .collect();
        let (outcomes, stats) = run_sweep_collect(&jobs, SweepOptions::new(1));
        assert!(outcomes.into_iter().all(|o| o.unwrap().verified));
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 11);
        assert_eq!(stats.cache_evictions, 0);
        assert_eq!(stats.cache_occupied(), 1);
        assert_eq!(stats.scratch_reseeds, 11);
        assert_eq!(stats.jobs_per_worker, vec![12]);
        assert!((stats.cache_hit_rate() - 11.0 / 12.0).abs() < 1e-12);

        // The uncached baseline misses every job by definition.
        let (_, uncached) = run_sweep_collect(&jobs, SweepOptions::uncached(3));
        assert_eq!(uncached.cache_hits, 0);
        assert_eq!(uncached.cache_misses, 12);
        assert!(uncached.cache_occupancy.is_empty());
        assert_eq!(uncached.jobs_per_worker.iter().sum::<u64>(), 12);
    }
}
