//! Parallel batch sweeps: run many `(program, memory seed)` jobs across
//! scoped worker threads, each job compiled once and verified against
//! the scalar oracle, with per-job [`RunStats`].
//!
//! The runner uses `std::thread::scope` so jobs can be borrowed rather
//! than moved, and a shared atomic cursor so threads self-schedule —
//! long jobs (large trip counts) don't stall a statically partitioned
//! worker.

use crate::kernel::CompiledKernel;
use simdize_codegen::SimdProgram;
use simdize_ir::VectorShape;
use simdize_vm::{run_scalar, ExecError, MemoryImage, RunInput, RunStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// One sweep job: a compiled program plus the seed that determines its
/// memory image (runtime misalignments and contents) and the runtime
/// inputs for the invocation.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The program to execute.
    pub program: SimdProgram,
    /// Seed for [`MemoryImage::with_seed`].
    pub seed: u64,
    /// Runtime trip count and parameter values.
    pub input: RunInput,
}

impl SweepJob {
    /// A job for `program` on the image seeded by `seed`, with the trip
    /// count taken from the loop when compile-time known and from `ub`
    /// otherwise.
    pub fn new(program: SimdProgram, seed: u64, ub: u64) -> SweepJob {
        let ub = program.source().trip().known().unwrap_or(ub);
        SweepJob {
            program,
            seed,
            input: RunInput::with_ub(ub),
        }
    }
}

/// The result of one sweep job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutcome {
    /// The job's memory seed.
    pub seed: u64,
    /// Dynamic instruction counts of the engine execution.
    pub stats: RunStats,
    /// Whether the engine's memory image matched the scalar oracle's
    /// byte for byte.
    pub verified: bool,
    /// Data elements produced (`statements × trip count`).
    pub data_produced: u64,
    /// The idealistic scalar instruction count for the same run.
    pub scalar_ideal: u64,
}

impl SweepOutcome {
    /// Speedup of the engine-executed simdized loop over the idealistic
    /// scalar baseline, in the paper's OPD terms.
    pub fn speedup(&self) -> f64 {
        self.scalar_ideal as f64 / self.stats.total() as f64
    }
}

/// Runs every job, distributing them over `threads` scoped worker
/// threads (clamped to `[1, jobs.len()]`), and returns per-job outcomes
/// in job order. Each job compiles a [`CompiledKernel`] for its own
/// image, runs it, and differentially verifies the result against
/// [`run_scalar`] on an identical image.
pub fn run_sweep(jobs: &[SweepJob], threads: usize) -> Vec<Result<SweepOutcome, ExecError>> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, jobs.len());
    let cursor = AtomicUsize::new(0);
    let partials: Vec<Vec<(usize, Result<SweepOutcome, ExecError>)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= jobs.len() {
                            break;
                        }
                        mine.push((idx, run_one(&jobs[idx])));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut results: Vec<Option<Result<SweepOutcome, ExecError>>> =
        (0..jobs.len()).map(|_| None).collect();
    for (idx, outcome) in partials.into_iter().flatten() {
        results[idx] = Some(outcome);
    }
    results
        .into_iter()
        .map(|r| r.expect("every job index claimed exactly once"))
        .collect()
}

fn run_one(job: &SweepJob) -> Result<SweepOutcome, ExecError> {
    let source = job.program.source();
    let mut engine_img = MemoryImage::with_seed(source, VectorShape::V16, job.seed);
    let mut oracle_img = engine_img.clone();
    let ub = source.trip().known().unwrap_or(job.input.ub);
    let kernel = CompiledKernel::compile(&job.program, &engine_img, &job.input)?;
    let stats = kernel.run(&mut engine_img)?;
    let scalar_ideal = run_scalar(source, &mut oracle_img, ub, &job.input.params)?;
    Ok(SweepOutcome {
        seed: job.seed,
        stats,
        verified: engine_img.first_difference(&oracle_img).is_none(),
        data_produced: source.stmts().len() as u64 * ub,
        scalar_ideal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions, ReuseMode};
    use simdize_ir::parse_program;
    use simdize_reorg::{Policy, ReorgGraph};

    fn program(src: &str) -> SimdProgram {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        generate(
            &g,
            &CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline),
        )
        .unwrap()
    }

    const RUNTIME: &str = "arrays { a: i32[512] @ ?; b: i32[512] @ ?; c: i32[512] @ ?; }
                           for i in 0..ub { a[i] = b[i+1] + c[i+3]; }";

    #[test]
    fn sweep_verifies_every_seed() {
        let prog = program(RUNTIME);
        let jobs: Vec<SweepJob> = (0..24)
            .map(|seed| SweepJob::new(prog.clone(), seed, 500))
            .collect();
        let outcomes = run_sweep(&jobs, 4);
        assert_eq!(outcomes.len(), 24);
        for (seed, outcome) in outcomes.into_iter().enumerate() {
            let o = outcome.unwrap();
            assert_eq!(o.seed, seed as u64);
            assert!(o.verified, "seed {seed} failed verification");
            assert!(o.speedup() > 1.0, "seed {seed} not profitable");
            assert_eq!(o.data_produced, 500);
        }
    }

    #[test]
    fn thread_counts_agree() {
        let prog = program(RUNTIME);
        let jobs: Vec<SweepJob> = (0..9)
            .map(|seed| SweepJob::new(prog.clone(), seed * 7, 200))
            .collect();
        let serial = run_sweep(&jobs, 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(run_sweep(&jobs, threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(run_sweep(&[], 4).is_empty());
    }
}
