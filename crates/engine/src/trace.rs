//! Trace fusion: post-bake optimization of the engine's straight-line
//! sections into fused superinstructions.
//!
//! Baking leaves the kernel as a literal transcription of the
//! `SimdProgram` — every misaligned stream costs a `vload` + a
//! `vshiftpair` (plus a rotation `copy` under software pipelining) per
//! iteration. But once addresses are baked to `(start, step)` byte
//! pairs, a simple abstract domain can prove where those reorganization
//! chains are just reads of *other* contiguous memory:
//!
//! * **window facts** — "register `r` holds `mem[s + k·t .. s + k·t + 16)`
//!   of array `A`, as memory currently is, at iteration `k`" — flow
//!   through loads, shifts of contiguous window pairs, and copies.
//!   A `vshiftpair(a, b, amt)` whose operands hold adjacent windows
//!   `[s, s+16)` / `[s+16, s+32)` is itself a load of `[s+amt, s+amt+16)`
//!   and is rewritten to a single fused `vload.fused` — sound because
//!   both constituent chunks were bounds-validated at bake time, and in
//!   bounds killed at every store to the same array (arrays' guarded
//!   regions are disjoint, so only same-array stores can invalidate a
//!   window).
//! * **known facts** — registers holding compile-time-constant bytes
//!   (splats and folds thereof). A binop with one known operand becomes
//!   an immediate-carrying `BinSplat`; with two, it folds to a `Splat`.
//!
//! Window facts at a loop entry come from a small fixpoint: the entry
//! fact must agree with the fall-in fact at iteration 0 and with the
//! back-edge fact (the end-of-iteration fact re-expressed one iteration
//! later, `start -= step`) for iterations ≥ 1. This is what lets the
//! software-pipelined rotation `prev = copy cur` feed the next
//! iteration's shift with a provable window.
//!
//! After rewriting, iteration-invariant ops are hoisted into a per-loop
//! header (executed once, only when the loop runs), and a global
//! backward liveness pass over all sections deletes ops whose results
//! are never observed — typically the raw loads and rotation copies
//! that fusion just obsoleted. None of this changes a stored byte or a
//! reported stat: `RunStats` are fixed before this pass runs, and the
//! differential tests execute every kernel fused and unfused.

use crate::kernel::Op;
use crate::lanes::{self, Reg};
use simdize_ir::ScalarType;
use simdize_telemetry as telemetry;

/// What the trace fusion pass did to one kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// `vload`+`vshiftpair` chains rewritten into single fused loads.
    pub fused_loads: usize,
    /// Binops rewritten to immediate forms or folded to splats.
    pub splat_ops: usize,
    /// Iteration-invariant ops moved to a per-loop header.
    pub hoisted: usize,
    /// Dead ops deleted by the global liveness pass.
    pub eliminated: usize,
}

/// One rewrite applied by the trace-fusion pass, for the decision
/// trace (`simdize-explain`). Unlike [`FusionStats`], which only
/// counts, events name the section and — for fused loads — the array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionEvent {
    /// The kernel section the rewrite happened in (`"prologue"`,
    /// `"pair"`, `"body"`, `"epilogue"`, `"pair header"`,
    /// `"body header"`).
    pub section: &'static str,
    /// What happened.
    pub kind: FusionEventKind,
}

/// The kind of rewrite a [`FusionEvent`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionEventKind {
    /// A `vload`+`vshiftpair` chain over provably adjacent windows was
    /// rewritten into one fused load of the array with baked index
    /// `arr` (the program's declaration order).
    LoadFused {
        /// Baked array index.
        arr: u32,
    },
    /// An op whose operands were all compile-time-known folded to a
    /// splat immediate.
    FoldedToSplat,
    /// A binop with exactly one known operand became an
    /// immediate-carrying form.
    ImmediateForm,
    /// Iteration-invariant ops were moved into the section's once-run
    /// header.
    Hoisted {
        /// How many ops moved.
        count: usize,
    },
    /// Dead ops were deleted by the global liveness sweep.
    Eliminated {
        /// How many ops died.
        count: usize,
    },
}

impl std::fmt::Display for FusionEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let section = self.section;
        match self.kind {
            FusionEventKind::LoadFused { arr } => write!(
                f,
                "{section}: vload+vshiftpair chain fused into one load of array #{arr}"
            ),
            FusionEventKind::FoldedToSplat => {
                write!(f, "{section}: known-operand op folded to a splat immediate")
            }
            FusionEventKind::ImmediateForm => write!(
                f,
                "{section}: binop with one known operand rewritten to an immediate form"
            ),
            FusionEventKind::Hoisted { count } => write!(
                f,
                "{section}: {count} iteration-invariant op(s) hoisted into a once-run header"
            ),
            FusionEventKind::Eliminated { count } => {
                write!(f, "{section}: {count} dead op(s) deleted")
            }
        }
    }
}

/// The baked sections of one kernel, handed over for optimization.
pub(crate) struct Sections<'a> {
    pub(crate) prologue: &'a mut Vec<Op>,
    pub(crate) pair: &'a mut Vec<Op>,
    pub(crate) pair_iters: i64,
    pub(crate) body: &'a mut Vec<Op>,
    pub(crate) body_iters: i64,
    pub(crate) epilogue: &'a mut Vec<Op>,
    pub(crate) nregs: usize,
    pub(crate) elem: ScalarType,
}

/// What is known about one register at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fact {
    /// Nothing.
    Bottom,
    /// The register holds `mem[start + k·step .. +16)` of array `arr`
    /// — the bytes as memory currently is — at iteration `k` of the
    /// enclosing loop (`step` is 0 outside loops).
    Window { arr: u32, start: i64, step: i64 },
    /// The register holds exactly these bytes, independent of `k`.
    Known(Reg),
}

/// Runs the full pass over a kernel's sections. Returns the hoisted
/// pair and body headers plus the fusion telemetry: aggregate counts
/// and the per-rewrite event list.
pub(crate) fn optimize(s: Sections) -> (Vec<Op>, Vec<Op>, FusionStats, Vec<FusionEvent>) {
    let mut st = FusionStats::default();
    let mut ev = Vec::new();
    let mut facts = vec![Fact::Bottom; s.nregs];
    {
        let _span = telemetry::span("rewrite");
        rewrite(s.prologue, &mut facts, s.elem, &mut st, "prologue", &mut ev);
    }

    let mut pair_header = Vec::new();
    if s.pair_iters > 0 {
        let entry = loop_entry(&facts, s.pair, s.elem);
        let mut work = entry;
        {
            let _span = telemetry::span("rewrite");
            rewrite(s.pair, &mut work, s.elem, &mut st, "pair", &mut ev);
        }
        let _span = telemetry::span("hoist");
        pair_header = hoist(s.pair, s.pair_iters, s.nregs, &mut st, "pair", &mut ev);
        facts = concretize(work, s.pair_iters);
    }
    let mut body_header = Vec::new();
    if s.body_iters > 0 {
        let entry = loop_entry(&facts, s.body, s.elem);
        let mut work = entry;
        {
            let _span = telemetry::span("rewrite");
            rewrite(s.body, &mut work, s.elem, &mut st, "body", &mut ev);
        }
        let _span = telemetry::span("hoist");
        body_header = hoist(s.body, s.body_iters, s.nregs, &mut st, "body", &mut ev);
        facts = concretize(work, s.body_iters);
    }
    {
        let _span = telemetry::span("rewrite");
        rewrite(s.epilogue, &mut facts, s.elem, &mut st, "epilogue", &mut ev);
    }

    {
        let _span = telemetry::span("dce");
        let mut segments = [
            Segment { ops: s.prologue, iters: 1, name: "prologue" },
            Segment { ops: &mut pair_header, iters: 1, name: "pair header" },
            Segment { ops: s.pair, iters: s.pair_iters, name: "pair" },
            Segment { ops: &mut body_header, iters: 1, name: "body header" },
            Segment { ops: s.body, iters: s.body_iters, name: "body" },
            Segment { ops: s.epilogue, iters: 1, name: "epilogue" },
        ];
        dce(&mut segments, s.nregs, &mut st, &mut ev);
    }
    if telemetry::enabled() {
        telemetry::counter("fuse.fused_loads").add(st.fused_loads as u64);
        telemetry::counter("fuse.splat_ops").add(st.splat_ops as u64);
        telemetry::counter("fuse.hoisted").add(st.hoisted as u64);
        telemetry::counter("fuse.eliminated").add(st.eliminated as u64);
        telemetry::tag(
            "fusion.rewrites",
            (st.fused_loads + st.splat_ops + st.hoisted + st.eliminated) as u64,
        );
    }
    (pair_header, body_header, st, ev)
}

/// The defined register of `op`, if any (only `Store` has none).
fn def(op: &Op) -> Option<u32> {
    match *op {
        Op::Load { dst, .. }
        | Op::LoadFused { dst, .. }
        | Op::Shift { dst, .. }
        | Op::Splice { dst, .. }
        | Op::Perm { dst, .. }
        | Op::Splat { dst, .. }
        | Op::Bin { dst, .. }
        | Op::BinSplat { dst, .. }
        | Op::Un { dst, .. }
        | Op::Copy { dst, .. } => Some(dst),
        Op::Store { .. } => None,
    }
}

/// Visits every register `op` reads.
fn uses(op: &Op, mut f: impl FnMut(u32)) {
    match *op {
        Op::Load { .. } | Op::LoadFused { .. } | Op::Splat { .. } => {}
        Op::Store { src, .. } => f(src),
        Op::Shift { a, b, .. }
        | Op::Splice { a, b, .. }
        | Op::Perm { a, b, .. }
        | Op::Bin { a, b, .. } => {
            f(a);
            f(b);
        }
        Op::BinSplat { a, .. } | Op::Un { a, .. } => f(a),
        Op::Copy { src, .. } => f(src),
    }
}

fn known(facts: &[Fact], r: u32) -> Option<Reg> {
    match facts[r as usize] {
        Fact::Known(bytes) => Some(bytes),
        _ => None,
    }
}

fn shift_bytes(a: &Reg, b: &Reg, amt: u8) -> Reg {
    let amt = amt as usize;
    let mut out = [0u8; 16];
    out[..16 - amt].copy_from_slice(&a[amt..]);
    out[16 - amt..].copy_from_slice(&b[..amt]);
    out
}

fn splice_bytes(a: &Reg, b: &Reg, point: u8) -> Reg {
    let p = point as usize;
    let mut out = [0u8; 16];
    out[..p].copy_from_slice(&a[..p]);
    out[p..].copy_from_slice(&b[p..]);
    out
}

fn perm_bytes(a: &Reg, b: &Reg, pattern: &[u8; 16]) -> Reg {
    let mut pair = [0u8; 32];
    pair[..16].copy_from_slice(a);
    pair[16..].copy_from_slice(b);
    let mut out = [0u8; 16];
    for (t, &sel) in pattern.iter().enumerate() {
        out[t] = pair[sel as usize];
    }
    out
}

/// The memory window a `vshiftpair(a, b, amt)` reads, when its
/// operands hold provably adjacent windows of one array. The fused
/// range `[s + amt, s + amt + 16)` sits inside the union of the two
/// operand windows, both of which were bounds-validated at bake time.
fn shift_window(facts: &[Fact], a: u32, b: u32, amt: u8) -> Option<(u32, i64, i64)> {
    let (fa, fb) = (&facts[a as usize], &facts[b as usize]);
    if amt == 0 {
        if let Fact::Window { arr, start, step } = *fa {
            return Some((arr, start, step));
        }
        return None;
    }
    if amt as i64 == 16 {
        if let Fact::Window { arr, start, step } = *fb {
            return Some((arr, start, step));
        }
        return None;
    }
    match (fa, fb) {
        (
            &Fact::Window { arr: a1, start: s1, step: t1 },
            &Fact::Window { arr: a2, start: s2, step: t2 },
        ) if a1 == a2 && t1 == t2 && s2 == s1 + 16 => Some((a1, s1 + amt as i64, t1)),
        _ => None,
    }
}

/// Transfer function: updates `facts` across one op. Stores kill every
/// window into the stored array (registers are unaffected; windows are
/// claims about memory). Cross-array kills are unnecessary because
/// array guarded regions never overlap.
fn flow(op: &Op, facts: &mut [Fact], elem: ScalarType) {
    match *op {
        Op::Load { dst, arr, start, step } | Op::LoadFused { dst, arr, start, step } => {
            facts[dst as usize] = Fact::Window { arr, start, step };
        }
        Op::Store { arr, .. } => {
            for f in facts.iter_mut() {
                if matches!(f, Fact::Window { arr: a, .. } if *a == arr) {
                    *f = Fact::Bottom;
                }
            }
        }
        Op::Shift { dst, a, b, amt } => {
            facts[dst as usize] = if let Some((arr, start, step)) = shift_window(facts, a, b, amt) {
                Fact::Window { arr, start, step }
            } else if let (Some(x), Some(y)) = (known(facts, a), known(facts, b)) {
                Fact::Known(shift_bytes(&x, &y, amt))
            } else {
                Fact::Bottom
            };
        }
        Op::Splice { dst, a, b, point } => {
            facts[dst as usize] = match (known(facts, a), known(facts, b)) {
                (Some(x), Some(y)) => Fact::Known(splice_bytes(&x, &y, point)),
                _ => Fact::Bottom,
            };
        }
        Op::Perm { dst, a, b, ref pattern } => {
            facts[dst as usize] = match (known(facts, a), known(facts, b)) {
                (Some(x), Some(y)) => Fact::Known(perm_bytes(&x, &y, pattern)),
                _ => Fact::Bottom,
            };
        }
        Op::Splat { dst, bytes } => facts[dst as usize] = Fact::Known(bytes),
        Op::Bin { dst, op, a, b } => {
            facts[dst as usize] = match (known(facts, a), known(facts, b)) {
                (Some(x), Some(y)) => Fact::Known(lanes::bin(op, elem, &x, &y)),
                _ => Fact::Bottom,
            };
        }
        Op::BinSplat { dst, op, a, ref imm, imm_left } => {
            facts[dst as usize] = match known(facts, a) {
                Some(x) if imm_left => Fact::Known(lanes::bin(op, elem, imm, &x)),
                Some(x) => Fact::Known(lanes::bin(op, elem, &x, imm)),
                None => Fact::Bottom,
            };
        }
        Op::Un { dst, op, a } => {
            facts[dst as usize] = match known(facts, a) {
                Some(x) => Fact::Known(lanes::un(op, elem, &x)),
                None => Fact::Bottom,
            };
        }
        Op::Copy { dst, src } => facts[dst as usize] = facts[src as usize],
    }
}

/// Meet of the fall-in fact (must hold at iteration 0) and the
/// back-edge fact (must hold at iterations ≥ 1). A window survives iff
/// both agree on array and first-iteration start; the step comes from
/// the back edge (fall-in facts are iteration-independent, step 0).
fn meet(pre: &Fact, back: &Fact) -> Fact {
    match (pre, back) {
        (Fact::Known(x), Fact::Known(y)) if x == y => Fact::Known(*x),
        (
            &Fact::Window { arr: a1, start: s1, .. },
            &Fact::Window { arr: a2, start: s2, step: t2 },
        ) if a1 == a2 && s1 == s2 => Fact::Window { arr: a1, start: s1, step: t2 },
        _ => Fact::Bottom,
    }
}

/// Loop-entry facts: the greatest assignment satisfying
/// `entry = meet(pre, translate(flow(entry)))`, where `translate`
/// re-expresses an end-of-iteration-`k` fact at the start of iteration
/// `k + 1` (`start -= step`). Any fixed point is sound by induction on
/// the iteration number: valid at `k = 0` through the fall-in
/// component, at `k ≥ 1` through the back-edge component. Bails to
/// all-`Bottom` (no information, no rewrites) if 64 rounds don't
/// converge.
fn loop_entry(pre: &[Fact], ops: &[Op], elem: ScalarType) -> Vec<Fact> {
    let mut entry = pre.to_vec();
    for _ in 0..64 {
        let mut end = entry.clone();
        for op in ops {
            flow(op, &mut end, elem);
        }
        for f in &mut end {
            if let Fact::Window { start, step, .. } = f {
                *start -= *step;
            }
        }
        let next: Vec<Fact> = pre.iter().zip(&end).map(|(p, b)| meet(p, b)).collect();
        if next == entry {
            return entry;
        }
        entry = next;
    }
    vec![Fact::Bottom; pre.len()]
}

/// Re-expresses per-iteration facts as facts that hold after the loop
/// completes `iters` iterations (windows pinned to the last iteration).
fn concretize(facts: Vec<Fact>, iters: i64) -> Vec<Fact> {
    facts
        .into_iter()
        .map(|f| match f {
            Fact::Window { arr, start, step } => Fact::Window {
                arr,
                start: start + (iters - 1) * step,
                step: 0,
            },
            other => other,
        })
        .collect()
}

/// One forward pass over a section: rewrites shift chains over adjacent
/// windows into fused loads and known-operand arithmetic into
/// splat/immediate forms, threading `facts` through every (rewritten)
/// op.
fn rewrite(
    ops: &mut [Op],
    facts: &mut [Fact],
    elem: ScalarType,
    st: &mut FusionStats,
    section: &'static str,
    ev: &mut Vec<FusionEvent>,
) {
    for op in ops.iter_mut() {
        let new = match *op {
            Op::Shift { dst, a, b, amt } => {
                if let Some((arr, start, step)) = shift_window(facts, a, b, amt) {
                    Some(Op::LoadFused { dst, arr, start, step })
                } else if let (Some(x), Some(y)) = (known(facts, a), known(facts, b)) {
                    Some(Op::Splat { dst, bytes: shift_bytes(&x, &y, amt) })
                } else {
                    None
                }
            }
            Op::Bin { dst, op: o, a, b } => match (known(facts, a), known(facts, b)) {
                (Some(x), Some(y)) => Some(Op::Splat { dst, bytes: lanes::bin(o, elem, &x, &y) }),
                (Some(x), None) => Some(Op::BinSplat { dst, op: o, a: b, imm: x, imm_left: true }),
                (None, Some(y)) => Some(Op::BinSplat { dst, op: o, a, imm: y, imm_left: false }),
                (None, None) => None,
            },
            Op::Un { dst, op: o, a } => {
                known(facts, a).map(|x| Op::Splat { dst, bytes: lanes::un(o, elem, &x) })
            }
            _ => None,
        };
        if let Some(new) = new {
            let kind = match new {
                Op::LoadFused { arr, .. } => {
                    st.fused_loads += 1;
                    FusionEventKind::LoadFused { arr }
                }
                Op::BinSplat { .. } => {
                    st.splat_ops += 1;
                    FusionEventKind::ImmediateForm
                }
                _ => {
                    st.splat_ops += 1;
                    FusionEventKind::FoldedToSplat
                }
            };
            ev.push(FusionEvent { section, kind });
            *op = new;
        }
        flow(op, facts, elem);
    }
}

/// Moves iteration-invariant ops out of a loop section into a header
/// executed once (the caller guarantees the loop runs at least once).
/// An op is hoistable when it defines a register exactly once, that
/// register is not read before its definition (so iteration 0 sees the
/// same value either way), every operand is loop-invariant (never
/// defined in the loop, or defined by an already-hoisted op), and — for
/// loads — the address does not advance and no store in the loop
/// touches the loaded window during any iteration.
fn hoist(
    ops: &mut Vec<Op>,
    iters: i64,
    nregs: usize,
    st: &mut FusionStats,
    section: &'static str,
    ev: &mut Vec<FusionEvent>,
) -> Vec<Op> {
    let mut def_count = vec![0u32; nregs];
    let mut upward = vec![false; nregs];
    let mut defined = vec![false; nregs];
    for op in ops.iter() {
        uses(op, |r| {
            if !defined[r as usize] {
                upward[r as usize] = true;
            }
        });
        if let Some(d) = def(op) {
            def_count[d as usize] += 1;
            defined[d as usize] = true;
        }
    }
    // Byte ranges each store covers across the whole loop.
    let stores: Vec<(u32, i64, i64)> = ops
        .iter()
        .filter_map(|op| match *op {
            Op::Store { arr, start, step, .. } => {
                let last = start + (iters - 1) * step;
                Some((arr, start.min(last), start.max(last) + 16))
            }
            _ => None,
        })
        .collect();
    let load_invariant = |arr: u32, start: i64, step: i64| {
        step == 0
            && !stores
                .iter()
                .any(|&(sa, lo, hi)| sa == arr && start < hi && lo < start + 16)
    };

    let mut header = Vec::new();
    let mut hoisted = vec![false; nregs];
    let mut kept = Vec::with_capacity(ops.len());
    for op in ops.drain(..) {
        let can = match def(&op) {
            Some(d) if def_count[d as usize] == 1 && !upward[d as usize] => {
                let mut invariant_uses = true;
                uses(&op, |r| {
                    if def_count[r as usize] != 0 && !hoisted[r as usize] {
                        invariant_uses = false;
                    }
                });
                invariant_uses
                    && match op {
                        Op::Load { arr, start, step, .. }
                        | Op::LoadFused { arr, start, step, .. } => load_invariant(arr, start, step),
                        _ => true,
                    }
            }
            _ => false,
        };
        if can {
            hoisted[def(&op).expect("hoisted ops define a register") as usize] = true;
            st.hoisted += 1;
            header.push(op);
        } else {
            kept.push(op);
        }
    }
    *ops = kept;
    if !header.is_empty() {
        ev.push(FusionEvent {
            section,
            kind: FusionEventKind::Hoisted { count: header.len() },
        });
    }
    header
}

struct Segment<'a> {
    ops: &'a mut Vec<Op>,
    iters: i64,
    name: &'static str,
}

/// Registers a section reads before (re)defining them — the values it
/// needs live on entry.
fn upward_uses(ops: &[Op], nregs: usize) -> Vec<bool> {
    let mut defined = vec![false; nregs];
    let mut ue = vec![false; nregs];
    for op in ops {
        uses(op, |r| {
            if !defined[r as usize] {
                ue[r as usize] = true;
            }
        });
        if let Some(d) = def(op) {
            defined[d as usize] = true;
        }
    }
    ue
}

/// Global dead-code elimination: one backward liveness sweep over the
/// kernel's segments in execution order, each segment's live-in feeding
/// the previous segment's live-out. A looping segment additionally
/// keeps its own upward-exposed uses live (a value may feed the next
/// iteration). This sequential propagation is sound because every
/// non-empty segment executes at least once (empty loops bake to empty
/// vectors), so a register a segment unconditionally redefines really
/// does kill the incoming value. Every def-carrying op is pure, so any
/// op whose result is dead can go; stores define nothing and are never
/// removed. Iterates to a fixpoint so fused-away load/copy chains
/// unravel fully.
fn dce(segments: &mut [Segment<'_>], nregs: usize, st: &mut FusionStats, ev: &mut Vec<FusionEvent>) {
    let mut per_segment = vec![0usize; segments.len()];
    loop {
        let mut removed = 0usize;
        let mut live = vec![false; nregs]; // nothing is observed after the epilogue
        for (seg_idx, seg) in segments.iter_mut().enumerate().rev() {
            if seg.iters > 1 {
                for (l, n) in live.iter_mut().zip(upward_uses(seg.ops, nregs)) {
                    *l |= n;
                }
            }
            let ops = &mut *seg.ops;
            let mut keep = vec![true; ops.len()];
            for (idx, op) in ops.iter().enumerate().rev() {
                if let Some(d) = def(op) {
                    if !live[d as usize] {
                        keep[idx] = false;
                        removed += 1;
                        per_segment[seg_idx] += 1;
                        continue;
                    }
                    live[d as usize] = false;
                }
                uses(op, |r| live[r as usize] = true);
            }
            let mut it = keep.iter();
            ops.retain(|_| *it.next().expect("keep mask matches ops len"));
        }
        if removed == 0 {
            break;
        }
        st.eliminated += removed;
    }
    for (seg, count) in segments.iter().zip(per_segment) {
        if count > 0 {
            ev.push(FusionEvent {
                section: seg.name,
                kind: FusionEventKind::Eliminated { count },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem() -> ScalarType {
        ScalarType::ALL
            .into_iter()
            .find(|t| t.size() == 4 && t.is_signed())
            .expect("i32 exists")
    }

    fn run(
        prologue: &mut Vec<Op>,
        pair: &mut Vec<Op>,
        pair_iters: i64,
        body: &mut Vec<Op>,
        body_iters: i64,
        epilogue: &mut Vec<Op>,
        nregs: usize,
    ) -> (Vec<Op>, Vec<Op>, FusionStats) {
        let (ph, bh, st, _) = optimize(Sections {
            prologue,
            pair,
            pair_iters,
            body,
            body_iters,
            epilogue,
            nregs,
            elem: elem(),
        });
        (ph, bh, st)
    }

    #[test]
    fn rotation_loop_fuses_and_sheds_its_loads() {
        // The software-pipelined misaligned-stream idiom:
        //   prologue:  v0 = load arr0[100]
        //   body x4:   v1 = load arr0[116 + 16k]
        //              v2 = shift(v0, v1, 4)
        //              store arr1[200 + 16k], v2
        //              v0 = copy v1
        // The loop-entry fixpoint proves v0 holds arr0[100 + 16k], the
        // shift fuses to a load of arr0[104 + 16k], and the raw loads,
        // the rotation copy and the prologue load all die.
        let mut prologue = vec![Op::Load { dst: 0, arr: 0, start: 100, step: 0 }];
        let mut body = vec![
            Op::Load { dst: 1, arr: 0, start: 116, step: 16 },
            Op::Shift { dst: 2, a: 0, b: 1, amt: 4 },
            Op::Store { src: 2, arr: 1, start: 200, step: 16 },
            Op::Copy { dst: 0, src: 1 },
        ];
        let (pair_h, body_h, st) = run(
            &mut prologue,
            &mut Vec::new(),
            0,
            &mut body,
            4,
            &mut Vec::new(),
            3,
        );
        assert_eq!(st.fused_loads, 1);
        assert_eq!(st.eliminated, 3, "prologue load, body load, rotation copy");
        assert!(pair_h.is_empty() && body_h.is_empty());
        assert!(prologue.is_empty());
        assert_eq!(
            body,
            vec![
                Op::LoadFused { dst: 2, arr: 0, start: 104, step: 16 },
                Op::Store { src: 2, arr: 1, start: 200, step: 16 },
            ]
        );
    }

    #[test]
    fn store_to_same_array_blocks_fusion() {
        // Same rotation idiom, but the loop stores into the array it
        // reads: the store kills the window facts, so nothing fuses and
        // nothing is deleted.
        let mut prologue = vec![Op::Load { dst: 0, arr: 0, start: 100, step: 0 }];
        let mut body = vec![
            Op::Load { dst: 1, arr: 0, start: 116, step: 16 },
            Op::Shift { dst: 2, a: 0, b: 1, amt: 4 },
            Op::Store { src: 2, arr: 0, start: 200, step: 16 },
            Op::Copy { dst: 0, src: 1 },
        ];
        let before = body.clone();
        let (_, _, st) = run(
            &mut prologue,
            &mut Vec::new(),
            0,
            &mut body,
            4,
            &mut Vec::new(),
            3,
        );
        assert_eq!(st.fused_loads, 0);
        assert_eq!(st.eliminated, 0);
        assert_eq!(body, before);
        assert_eq!(prologue.len(), 1);
    }

    #[test]
    fn known_operand_binop_becomes_immediate_form() {
        //   body x8: v0 = splat(7)
        //            v1 = load arr0[96 + 16k]
        //            v2 = add(v0, v1)
        //            store arr1[192 + 16k], v2
        // The splat is a known fact, so the add carries it as an
        // immediate; the now-unused splat is first hoisted (it is
        // trivially invariant) and then deleted as dead.
        let imm = [7u8; 16];
        let mut body = vec![
            Op::Splat { dst: 0, bytes: imm },
            Op::Load { dst: 1, arr: 0, start: 96, step: 16 },
            Op::Bin { dst: 2, op: simdize_ir::BinOp::Add, a: 0, b: 1 },
            Op::Store { src: 2, arr: 1, start: 192, step: 16 },
        ];
        let (_, body_h, st) = run(
            &mut Vec::new(),
            &mut Vec::new(),
            0,
            &mut body,
            8,
            &mut Vec::new(),
            3,
        );
        assert_eq!(st.splat_ops, 1);
        assert!(body_h.is_empty(), "dead hoisted splat is deleted");
        assert_eq!(
            body,
            vec![
                Op::Load { dst: 1, arr: 0, start: 96, step: 16 },
                Op::BinSplat { dst: 2, op: simdize_ir::BinOp::Add, a: 1, imm, imm_left: true },
                Op::Store { src: 2, arr: 1, start: 192, step: 16 },
            ]
        );
    }

    #[test]
    fn invariant_load_hoists_into_header() {
        //   body x8: v0 = load arr0[100]        (address never advances)
        //            v1 = load arr1[200 + 16k]
        //            v2 = max(v0, v1)
        //            store arr2[300 + 16k], v2
        let mut body = vec![
            Op::Load { dst: 0, arr: 0, start: 100, step: 0 },
            Op::Load { dst: 1, arr: 1, start: 200, step: 16 },
            Op::Bin { dst: 2, op: simdize_ir::BinOp::Max, a: 0, b: 1 },
            Op::Store { src: 2, arr: 2, start: 300, step: 16 },
        ];
        let (_, body_h, st) = run(
            &mut Vec::new(),
            &mut Vec::new(),
            0,
            &mut body,
            8,
            &mut Vec::new(),
            3,
        );
        assert_eq!(st.hoisted, 1);
        assert_eq!(body_h, vec![Op::Load { dst: 0, arr: 0, start: 100, step: 0 }]);
        assert_eq!(body.len(), 3);
    }

    #[test]
    fn overlapping_store_pins_invariant_load() {
        // Same shape, but the loop stores over the "invariant" window:
        // the load must stay in the loop.
        let mut body = vec![
            Op::Load { dst: 0, arr: 0, start: 100, step: 0 },
            Op::Load { dst: 1, arr: 1, start: 200, step: 16 },
            Op::Bin { dst: 2, op: simdize_ir::BinOp::Max, a: 0, b: 1 },
            Op::Store { src: 2, arr: 0, start: 96, step: 16 },
        ];
        let (_, body_h, st) = run(
            &mut Vec::new(),
            &mut Vec::new(),
            0,
            &mut body,
            8,
            &mut Vec::new(),
            3,
        );
        assert_eq!(st.hoisted, 0);
        assert!(body_h.is_empty());
        assert_eq!(body.len(), 4);
    }

    #[test]
    fn epilogue_keeps_loop_results_alive() {
        // The loop's rotated register feeds the epilogue: the copy (and
        // its load) must survive DCE even though the loop itself no
        // longer reads them after fusion.
        let mut prologue = vec![Op::Load { dst: 0, arr: 0, start: 100, step: 0 }];
        let mut body = vec![
            Op::Load { dst: 1, arr: 0, start: 116, step: 16 },
            Op::Shift { dst: 2, a: 0, b: 1, amt: 4 },
            Op::Store { src: 2, arr: 1, start: 200, step: 16 },
            Op::Copy { dst: 0, src: 1 },
        ];
        let mut epilogue = vec![Op::Store { src: 0, arr: 1, start: 400, step: 0 }];
        let (_, _, st) = run(&mut prologue, &mut Vec::new(), 0, &mut body, 4, &mut epilogue, 3);
        assert_eq!(st.fused_loads, 1);
        // Only the prologue load dies: the loop's copy unconditionally
        // redefines v0 before the epilogue reads it, while the copy and
        // the raw load it reads stay to produce that value.
        assert_eq!(st.eliminated, 1);
        assert_eq!(body.len(), 4, "raw load is kept for the rotation copy");
        assert!(body.contains(&Op::Copy { dst: 0, src: 1 }));
    }
}
