//! Portable scalar-emulation tier: executes the lowered [`NOp`]
//! program on `[u8; 16]` registers with no `unsafe` and no
//! architecture assumptions. This is the tier every host can run, the
//! clamp target for unavailable ISAs, and the differential reference
//! the intrinsic tiers are tested against.
//!
//! Unlike the interpreter it consumes the *lowered* operands — splice
//! byte masks, split permutation tables — and it honors the banked
//! body schedule, so both the lowering pass and the bank scheduling
//! logic are under test even on hosts without SIMD.

use super::{NOp, Plan, BANK};
use crate::lanes::{self, Reg};
use simdize_ir::ScalarType;

/// One straight-line section for `LANES` consecutive iterations; see
/// the tier macro in the `x86` module for the banked-schedule
/// contract. `regs` holds `LANES * nregs` registers, bank-major.
fn exec_ops<const LANES: usize>(
    ops: &[NOp],
    k0: i64,
    elem: ScalarType,
    nregs: usize,
    regs: &mut [Reg],
    mem: &mut [u8],
) {
    for op in ops {
        match *op {
            NOp::Load { dst, start, step } => {
                for u in 0..LANES {
                    let at = (start + (k0 + u as i64) * step) as usize;
                    regs[u * nregs + dst as usize].copy_from_slice(&mem[at..at + 16]);
                }
            }
            NOp::Store { src, start, step } => {
                for u in 0..LANES {
                    let at = (start + (k0 + u as i64) * step) as usize;
                    mem[at..at + 16].copy_from_slice(&regs[u * nregs + src as usize]);
                }
            }
            NOp::Shift { dst, a, b, amt } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    let av = regs[o + a as usize];
                    let bv = regs[o + b as usize];
                    let amt = amt as usize;
                    let out = &mut regs[o + dst as usize];
                    out[..16 - amt].copy_from_slice(&av[amt..]);
                    out[16 - amt..].copy_from_slice(&bv[..amt]);
                }
            }
            NOp::Splice { dst, a, b, ref mask } => {
                // Drive the select off the lowered mask (not the splice
                // point) so the mask itself is differentially tested.
                for u in 0..LANES {
                    let o = u * nregs;
                    let av = regs[o + a as usize];
                    let bv = regs[o + b as usize];
                    let out = &mut regs[o + dst as usize];
                    for i in 0..16 {
                        out[i] = (av[i] & mask[i]) | (bv[i] & !mask[i]);
                    }
                }
            }
            NOp::Perm { dst, a, b, ref pattern, .. } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    let mut pair = [0u8; 32];
                    pair[..16].copy_from_slice(&regs[o + a as usize]);
                    pair[16..].copy_from_slice(&regs[o + b as usize]);
                    let out = &mut regs[o + dst as usize];
                    for (t, &sel) in pattern.iter().enumerate() {
                        out[t] = pair[sel as usize];
                    }
                }
            }
            NOp::Splat { dst, bytes } => {
                for u in 0..LANES {
                    regs[u * nregs + dst as usize] = bytes;
                }
            }
            NOp::Bin { dst, op, a, b } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    regs[o + dst as usize] =
                        lanes::bin(op, elem, &regs[o + a as usize], &regs[o + b as usize]);
                }
            }
            NOp::BinImm { dst, op, a, ref imm, imm_left } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    let av = regs[o + a as usize];
                    regs[o + dst as usize] = if imm_left {
                        lanes::bin(op, elem, imm, &av)
                    } else {
                        lanes::bin(op, elem, &av, imm)
                    };
                }
            }
            NOp::Un { dst, op, a } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    regs[o + dst as usize] = lanes::un(op, elem, &regs[o + a as usize]);
                }
            }
            NOp::Copy { dst, src } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    regs[o + dst as usize] = regs[o + src as usize];
                }
            }
        }
    }
}

/// One loop section, banked when the lowering proved it legal and the
/// trip is long enough to fill a window.
fn looped(
    ops: &[NOp],
    iters: i64,
    banked: bool,
    elem: ScalarType,
    nregs: usize,
    regs: &mut [Reg],
    mem: &mut [u8],
) {
    let mut k = 0;
    if banked && iters >= BANK as i64 {
        // Bank `BANK - 1` runs the last iteration of each window, so
        // its file is the sequential state the remainder and later
        // sections expect.
        let mut banks = vec![[0u8; 16]; BANK * nregs];
        for u in 0..BANK {
            banks[u * nregs..(u + 1) * nregs].copy_from_slice(regs);
        }
        while k + BANK as i64 <= iters {
            exec_ops::<BANK>(ops, k, elem, nregs, &mut banks, mem);
            k += BANK as i64;
        }
        regs.copy_from_slice(&banks[(BANK - 1) * nregs..]);
    }
    for kk in k..iters {
        exec_ops::<1>(ops, kk, elem, nregs, regs, mem);
    }
}

/// Runs the whole lowered plan on the portable tier.
pub(super) fn exec(plan: &Plan<'_>, mem: &mut [u8]) {
    let nregs = plan.nregs;
    let mut regs = vec![[0u8; 16]; nregs];
    let elem = plan.elem;
    exec_ops::<1>(plan.prologue, 0, elem, nregs, &mut regs, mem);
    if plan.pair_iters > 0 {
        exec_ops::<1>(plan.pair_header, 0, elem, nregs, &mut regs, mem);
        looped(plan.pair, plan.pair_iters, plan.pair_banked, elem, nregs, &mut regs, mem);
    }
    if plan.body_iters > 0 {
        exec_ops::<1>(plan.body_header, 0, elem, nregs, &mut regs, mem);
        looped(plan.body, plan.body_iters, plan.body_banked, elem, nregs, &mut regs, mem);
    }
    exec_ops::<1>(plan.epilogue, 0, elem, nregs, &mut regs, mem);
}
