//! Runtime ISA detection for the intrinsics backend.
//!
//! [`IsaLevel`] names the instruction tiers the lowering pass can
//! target. Detection picks the best tier the host supports —
//! `is_x86_feature_detected!` at runtime for AVX2, `cfg(target_arch)`
//! for the SSE2 and NEON baselines — and the `SIMDIZE_ISA` environment
//! variable can *lower* (never raise) the choice, which is how CI
//! exercises the SSE2 path on AVX2 hosts.

use std::fmt;

/// An instruction-set tier the [`SimdKernel`](super::SimdKernel)
/// lowering can target.
///
/// Ordered by preference: detection returns the highest tier the host
/// supports. `Scalar` is the portable emulation tier and is valid on
/// every host, so the backend is total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IsaLevel {
    /// Portable scalar emulation on `[u8; 16]` registers. Always valid.
    Scalar,
    /// x86_64 baseline: SSE2 is architecturally guaranteed.
    Sse2,
    /// x86_64 with runtime-detected SSSE3 + SSE4.1 + AVX2 (`palignr`,
    /// `pshufb`, `pblendvb`, `pmulld`, the full min/max family).
    Avx2,
    /// aarch64 baseline: NEON (ASIMD) is architecturally guaranteed.
    Neon,
}

impl IsaLevel {
    /// Every tier, for enumeration in tests and docs.
    pub const ALL: [IsaLevel; 4] = [
        IsaLevel::Scalar,
        IsaLevel::Sse2,
        IsaLevel::Avx2,
        IsaLevel::Neon,
    ];

    /// The lowercase name used in summaries (`backend: simd/avx2`),
    /// cache-key telemetry and the `SIMDIZE_ISA` override.
    pub fn name(self) -> &'static str {
        match self {
            IsaLevel::Scalar => "scalar",
            IsaLevel::Sse2 => "sse2",
            IsaLevel::Avx2 => "avx2",
            IsaLevel::Neon => "neon",
        }
    }

    /// Parses a [`name`](IsaLevel::name) back to a tier.
    pub fn parse(s: &str) -> Option<IsaLevel> {
        Self::ALL.into_iter().find(|l| l.name() == s)
    }

    /// Relative capability rank used by the override clamp: an override
    /// may only pick a tier that ranks at or below the detected one.
    fn rank(self) -> u8 {
        match self {
            IsaLevel::Scalar => 0,
            IsaLevel::Sse2 | IsaLevel::Neon => 1,
            IsaLevel::Avx2 => 2,
        }
    }

    /// Whether this tier can execute on the current host. `Scalar` is
    /// always available; `Avx2` additionally requires the runtime
    /// feature probe (SSSE3/SSE4.1/AVX2 together).
    pub fn available(self) -> bool {
        match self {
            IsaLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            IsaLevel::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            IsaLevel::Avx2 => {
                is_x86_feature_detected!("ssse3")
                    && is_x86_feature_detected!("sse4.1")
                    && is_x86_feature_detected!("avx2")
            }
            #[cfg(target_arch = "aarch64")]
            IsaLevel::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// The best tier the host hardware supports, ignoring overrides.
    pub fn host_best() -> IsaLevel {
        #[cfg(target_arch = "x86_64")]
        {
            if IsaLevel::Avx2.available() {
                IsaLevel::Avx2
            } else {
                IsaLevel::Sse2
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            IsaLevel::Neon
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            IsaLevel::Scalar
        }
    }

    /// The tier the backend dispatches to: [`host_best`](Self::host_best),
    /// optionally lowered by the `SIMDIZE_ISA` environment variable
    /// (`scalar`, `sse2`, `avx2`, `neon`). The override can only select
    /// a tier the host supports at or below the detected rank —
    /// `SIMDIZE_ISA=avx2` on an SSE2-only machine, or any unknown
    /// value, is ignored. This is what lets CI force the SSE2 path on
    /// AVX2 hosts without losing safety.
    pub fn detect() -> IsaLevel {
        Self::with_override(std::env::var("SIMDIZE_ISA").ok().as_deref())
    }

    /// [`detect`](Self::detect) with the override injected, so tests
    /// can cover the clamp without mutating process environment.
    pub(crate) fn with_override(requested: Option<&str>) -> IsaLevel {
        let best = Self::host_best();
        if let Some(req) = requested.and_then(IsaLevel::parse) {
            if req.available() && req.rank() <= best.rank() {
                return req;
            }
        }
        best
    }
}

impl fmt::Display for IsaLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for level in IsaLevel::ALL {
            assert_eq!(IsaLevel::parse(level.name()), Some(level));
        }
        assert_eq!(IsaLevel::parse("sse9"), None);
    }

    #[test]
    fn detect_is_available() {
        let level = IsaLevel::detect();
        assert!(level.available(), "detected tier must run here: {level}");
    }

    #[test]
    fn override_only_lowers() {
        let best = IsaLevel::host_best();
        // Scalar is always a legal downgrade.
        assert_eq!(IsaLevel::with_override(Some("scalar")), IsaLevel::Scalar);
        // Unknown values fall back to the detected tier.
        assert_eq!(IsaLevel::with_override(Some("sse9")), best);
        assert_eq!(IsaLevel::with_override(None), best);
        // Asking for the detected tier is a no-op.
        assert_eq!(IsaLevel::with_override(Some(best.name())), best);
        // On x86_64 the SSE2 baseline is always grantable.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(IsaLevel::with_override(Some("sse2")), IsaLevel::Sse2);
        // A foreign-architecture tier is never granted.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(IsaLevel::with_override(Some("neon")), best);
        #[cfg(target_arch = "aarch64")]
        assert_eq!(IsaLevel::with_override(Some("avx2")), best);
    }
}
