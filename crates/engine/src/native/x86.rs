//! x86_64 intrinsic tiers: SSE2 baseline and the AVX2 tier.
//!
//! Each tier is one `#[target_feature]` function pair (section
//! executor + plan driver) stamped from a macro, plus per-operation
//! helpers carrying the same feature set so every call between them is
//! a safe same-context call (rustc's implied-feature rules make the
//! SSE2-attributed helpers callable from the AVX2 tier).
//!
//! The AVX2 tier works on 128-bit registers — the engine's vector
//! shape is V16 — but the runtime `avx2` probe is what guarantees the
//! SSSE3/SSE4.1 forms it leans on: `palignr` for `vshiftpair`,
//! `pblendvb` for `vsplice`, dual `pshufb` for `vperm`, `pmulld` and
//! the full min/max family for arithmetic. The SSE2 tier synthesizes
//! the same results from the guaranteed baseline: shift as
//! `psrldq`/`pslldq`/`por`, splice as `pand`/`pandn`/`por`, and a
//! scalar byte gather for the (rare, strided-only) `vperm`.
//!
//! Operation/width pairs with no instruction in a tier fall back to
//! the [`lanes`] reference loops on register copies — bit-identical by
//! definition, and only ever hit for combinations the paper's kernels
//! do not emit in hot loops (64-bit multiply, cross-signedness
//! min/max on SSE2, …).
//!
//! This module and `neon` are the only two places in the crate allowed
//! to use `unsafe`; every block is a load/store intrinsic on an
//! exactly-16-byte slice or a feature-checked tier entry.

use super::{IsaLevel, NOp, Plan, BANK};
use crate::lanes::{self, Reg};
use core::arch::x86_64::*;
use simdize_ir::{BinOp, ScalarType, UnOp};

/// Safe dispatch into the x86 tiers. `wide` asks for the AVX2 tier;
/// the runtime probe is re-checked here so this safe function cannot
/// reach unsupported instructions even if called with a stale flag.
pub(super) fn exec(plan: &Plan<'_>, mem: &mut [u8], wide: bool) {
    if wide && IsaLevel::Avx2.available() {
        // SAFETY: the `avx2` branch of `available` just confirmed
        // ssse3, sse4.1 and avx2 via `is_x86_feature_detected!`.
        unsafe { run_avx2(plan, mem) }
    } else {
        // SAFETY: SSE2 is architecturally guaranteed on x86_64.
        unsafe { run_sse2(plan, mem) }
    }
}

#[inline]
#[target_feature(enable = "sse2")]
fn to_bytes(v: __m128i) -> Reg {
    let mut out = [0u8; 16];
    // SAFETY: `out` is exactly 16 writable bytes; movdqu has no
    // alignment requirement.
    unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), v) };
    out
}

#[inline]
#[target_feature(enable = "sse2")]
fn from_bytes(r: &Reg) -> __m128i {
    // SAFETY: `r` is exactly 16 readable bytes; movdqu has no
    // alignment requirement.
    unsafe { _mm_loadu_si128(r.as_ptr().cast()) }
}

/// Reference-loop fallback for operation/width pairs the tier has no
/// instruction for: round-trip through byte registers.
#[inline]
#[target_feature(enable = "sse2")]
fn emul_bin(op: BinOp, elem: ScalarType, a: __m128i, b: __m128i) -> __m128i {
    from_bytes(&lanes::bin(op, elem, &to_bytes(a), &to_bytes(b)))
}

#[inline]
#[target_feature(enable = "sse2")]
fn emul_un(op: UnOp, elem: ScalarType, a: __m128i) -> __m128i {
    from_bytes(&lanes::un(op, elem, &to_bytes(a)))
}

/// `vshiftpair` on the SSE2 baseline: no `palignr`, so synthesize the
/// byte rotate from the two whole-register byte shifts. The shift
/// amount is a const immediate on both instructions, hence the match
/// table over all 17 legal amounts.
#[inline]
#[target_feature(enable = "sse2")]
fn shift_sse2(a: __m128i, b: __m128i, amt: u8) -> __m128i {
    macro_rules! arm {
        ($n:literal) => {
            _mm_or_si128(_mm_srli_si128::<$n>(a), _mm_slli_si128::<{ 16 - $n }>(b))
        };
    }
    match amt {
        0 => a,
        1 => arm!(1),
        2 => arm!(2),
        3 => arm!(3),
        4 => arm!(4),
        5 => arm!(5),
        6 => arm!(6),
        7 => arm!(7),
        8 => arm!(8),
        9 => arm!(9),
        10 => arm!(10),
        11 => arm!(11),
        12 => arm!(12),
        13 => arm!(13),
        14 => arm!(14),
        15 => arm!(15),
        _ => b,
    }
}

/// `vshiftpair` as the paper lowers it: one `palignr` per amount.
/// `palignr(b, a, n)` reads the concatenation `b:a` shifted right `n`
/// bytes — exactly `out[i] = (a ++ b)[i + n]`.
#[inline]
#[target_feature(enable = "ssse3,sse4.1,avx2")]
fn shift_avx2(a: __m128i, b: __m128i, amt: u8) -> __m128i {
    macro_rules! arm {
        ($n:literal) => {
            _mm_alignr_epi8::<$n>(b, a)
        };
    }
    match amt {
        0 => a,
        1 => arm!(1),
        2 => arm!(2),
        3 => arm!(3),
        4 => arm!(4),
        5 => arm!(5),
        6 => arm!(6),
        7 => arm!(7),
        8 => arm!(8),
        9 => arm!(9),
        10 => arm!(10),
        11 => arm!(11),
        12 => arm!(12),
        13 => arm!(13),
        14 => arm!(14),
        15 => arm!(15),
        _ => b,
    }
}

/// `vsplice` select: mask byte `0xFF` takes `a`, `0x00` takes `b`.
#[inline]
#[target_feature(enable = "sse2")]
fn splice_sse2(a: __m128i, b: __m128i, mask: &Reg) -> __m128i {
    let m = from_bytes(mask);
    _mm_or_si128(_mm_and_si128(m, a), _mm_andnot_si128(m, b))
}

#[inline]
#[target_feature(enable = "ssse3,sse4.1,avx2")]
fn splice_avx2(a: __m128i, b: __m128i, mask: &Reg) -> __m128i {
    // blendv picks its *second* source where the mask byte's high bit
    // is set; our mask is 0xFF-on-`a`.
    _mm_blendv_epi8(b, a, from_bytes(mask))
}

/// `vperm` without `pshufb`: scalar byte gather over the 32-byte pair.
#[inline]
#[target_feature(enable = "sse2")]
fn perm_sse2(a: __m128i, b: __m128i, pattern: &[u8; 16], _lo: &Reg, _hi: &Reg) -> __m128i {
    let mut pair = [0u8; 32];
    pair[..16].copy_from_slice(&to_bytes(a));
    pair[16..].copy_from_slice(&to_bytes(b));
    let mut out = [0u8; 16];
    for (t, &sel) in pattern.iter().enumerate() {
        out[t] = pair[sel as usize];
    }
    from_bytes(&out)
}

/// `vperm` as dual `pshufb`: each half-table selects from one source
/// register (0x80 lanes shuffle to zero), OR merges the halves.
#[inline]
#[target_feature(enable = "ssse3,sse4.1,avx2")]
fn perm_avx2(a: __m128i, b: __m128i, _pattern: &[u8; 16], lo: &Reg, hi: &Reg) -> __m128i {
    _mm_or_si128(
        _mm_shuffle_epi8(a, from_bytes(lo)),
        _mm_shuffle_epi8(b, from_bytes(hi)),
    )
}

#[inline]
#[target_feature(enable = "sse2")]
fn bin_sse2(op: BinOp, elem: ScalarType, a: __m128i, b: __m128i) -> __m128i {
    let signed = elem.is_signed();
    match (op, elem.size()) {
        (BinOp::Add, 1) => _mm_add_epi8(a, b),
        (BinOp::Add, 2) => _mm_add_epi16(a, b),
        (BinOp::Add, 4) => _mm_add_epi32(a, b),
        (BinOp::Add, _) => _mm_add_epi64(a, b),
        (BinOp::Sub, 1) => _mm_sub_epi8(a, b),
        (BinOp::Sub, 2) => _mm_sub_epi16(a, b),
        (BinOp::Sub, 4) => _mm_sub_epi32(a, b),
        (BinOp::Sub, _) => _mm_sub_epi64(a, b),
        (BinOp::Mul, 2) => _mm_mullo_epi16(a, b),
        (BinOp::And, _) => _mm_and_si128(a, b),
        (BinOp::Or, _) => _mm_or_si128(a, b),
        (BinOp::Xor, _) => _mm_xor_si128(a, b),
        (BinOp::Min, 1) if !signed => _mm_min_epu8(a, b),
        (BinOp::Min, 2) if signed => _mm_min_epi16(a, b),
        (BinOp::Max, 1) if !signed => _mm_max_epu8(a, b),
        (BinOp::Max, 2) if signed => _mm_max_epi16(a, b),
        _ => emul_bin(op, elem, a, b),
    }
}

#[inline]
#[target_feature(enable = "ssse3,sse4.1,avx2")]
fn bin_avx2(op: BinOp, elem: ScalarType, a: __m128i, b: __m128i) -> __m128i {
    let signed = elem.is_signed();
    match (op, elem.size()) {
        (BinOp::Mul, 4) => _mm_mullo_epi32(a, b),
        (BinOp::Min, 1) if signed => _mm_min_epi8(a, b),
        (BinOp::Min, 2) if !signed => _mm_min_epu16(a, b),
        (BinOp::Min, 4) if signed => _mm_min_epi32(a, b),
        (BinOp::Min, 4) => _mm_min_epu32(a, b),
        (BinOp::Max, 1) if signed => _mm_max_epi8(a, b),
        (BinOp::Max, 2) if !signed => _mm_max_epu16(a, b),
        (BinOp::Max, 4) if signed => _mm_max_epi32(a, b),
        (BinOp::Max, 4) => _mm_max_epu32(a, b),
        _ => bin_sse2(op, elem, a, b),
    }
}

#[inline]
#[target_feature(enable = "sse2")]
fn un_sse2(op: UnOp, elem: ScalarType, a: __m128i) -> __m128i {
    let signed = elem.is_signed();
    let zero = _mm_setzero_si128();
    match (op, elem.size()) {
        (UnOp::Neg, 1) => _mm_sub_epi8(zero, a),
        (UnOp::Neg, 2) => _mm_sub_epi16(zero, a),
        (UnOp::Neg, 4) => _mm_sub_epi32(zero, a),
        (UnOp::Neg, _) => _mm_sub_epi64(zero, a),
        (UnOp::Not, _) => _mm_xor_si128(a, _mm_cmpeq_epi32(zero, zero)),
        // abs on an unsigned type is the identity (lanes semantics).
        (UnOp::Abs, _) if !signed => a,
        // pabsw is SSSE3; max(a, -a) matches wrapping_abs (MIN → MIN).
        (UnOp::Abs, 2) => _mm_max_epi16(a, _mm_sub_epi16(zero, a)),
        _ => emul_un(op, elem, a),
    }
}

#[inline]
#[target_feature(enable = "ssse3,sse4.1,avx2")]
fn un_avx2(op: UnOp, elem: ScalarType, a: __m128i) -> __m128i {
    match (op, elem.size()) {
        // pabs* keeps MIN as MIN — exactly `wrapping_abs`.
        (UnOp::Abs, 1) if elem.is_signed() => _mm_abs_epi8(a),
        (UnOp::Abs, 2) if elem.is_signed() => _mm_abs_epi16(a),
        (UnOp::Abs, 4) if elem.is_signed() => _mm_abs_epi32(a),
        _ => un_sse2(op, elem, a),
    }
}

macro_rules! tier {
    ($run:ident, $sect:ident, $looped:ident, $features:literal, $shift:ident, $splice:ident,
     $perm:ident, $bin:ident, $un:ident) => {
        /// One straight-line section for `LANES` consecutive
        /// iterations: each op is dispatched once and executed against
        /// `LANES` independent register files (`regs` holds
        /// `LANES * nregs` registers, bank-major). `LANES == 1` is the
        /// plain sequential schedule; [`BANK`] is the banked one,
        /// legal only when the lowering proved the body bankable.
        #[target_feature(enable = $features)]
        fn $sect<const LANES: usize>(
            ops: &[NOp],
            k0: i64,
            elem: ScalarType,
            nregs: usize,
            regs: &mut [__m128i],
            mem: &mut [u8],
        ) {
            for op in ops {
                match *op {
                    NOp::Load { dst, start, step } => {
                        for u in 0..LANES {
                            let at = (start + (k0 + u as i64) * step) as usize;
                            let src = &mem[at..at + 16];
                            // SAFETY: the slice is exactly 16 readable bytes.
                            regs[u * nregs + dst as usize] =
                                unsafe { _mm_loadu_si128(src.as_ptr().cast()) };
                        }
                    }
                    NOp::Store { src, start, step } => {
                        for u in 0..LANES {
                            let at = (start + (k0 + u as i64) * step) as usize;
                            let v = regs[u * nregs + src as usize];
                            let out = &mut mem[at..at + 16];
                            // SAFETY: the slice is exactly 16 writable bytes.
                            unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), v) };
                        }
                    }
                    NOp::Shift { dst, a, b, amt } => {
                        for u in 0..LANES {
                            let o = u * nregs;
                            regs[o + dst as usize] =
                                $shift(regs[o + a as usize], regs[o + b as usize], amt);
                        }
                    }
                    NOp::Splice { dst, a, b, ref mask } => {
                        for u in 0..LANES {
                            let o = u * nregs;
                            regs[o + dst as usize] =
                                $splice(regs[o + a as usize], regs[o + b as usize], mask);
                        }
                    }
                    NOp::Perm { dst, a, b, ref pattern, ref lo, ref hi } => {
                        for u in 0..LANES {
                            let o = u * nregs;
                            regs[o + dst as usize] =
                                $perm(regs[o + a as usize], regs[o + b as usize], pattern, lo, hi);
                        }
                    }
                    NOp::Splat { dst, ref bytes } => {
                        let v = from_bytes(bytes);
                        for u in 0..LANES {
                            regs[u * nregs + dst as usize] = v;
                        }
                    }
                    NOp::Bin { dst, op, a, b } => {
                        for u in 0..LANES {
                            let o = u * nregs;
                            regs[o + dst as usize] =
                                $bin(op, elem, regs[o + a as usize], regs[o + b as usize]);
                        }
                    }
                    NOp::BinImm { dst, op, a, ref imm, imm_left } => {
                        let iv = from_bytes(imm);
                        for u in 0..LANES {
                            let o = u * nregs;
                            let av = regs[o + a as usize];
                            regs[o + dst as usize] = if imm_left {
                                $bin(op, elem, iv, av)
                            } else {
                                $bin(op, elem, av, iv)
                            };
                        }
                    }
                    NOp::Un { dst, op, a } => {
                        for u in 0..LANES {
                            let o = u * nregs;
                            regs[o + dst as usize] = $un(op, elem, regs[o + a as usize]);
                        }
                    }
                    NOp::Copy { dst, src } => {
                        for u in 0..LANES {
                            let o = u * nregs;
                            regs[o + dst as usize] = regs[o + src as usize];
                        }
                    }
                }
            }
        }

        /// One loop section, banked when the lowering proved it legal
        /// and the trip is long enough to fill a window.
        #[target_feature(enable = $features)]
        fn $looped(
            ops: &[NOp],
            iters: i64,
            banked: bool,
            elem: ScalarType,
            nregs: usize,
            regs: &mut [__m128i],
            mem: &mut [u8],
        ) {
            let mut k = 0;
            if banked && iters >= BANK as i64 {
                // Every bank starts from the sequential register state
                // (loop invariants included); bank `BANK-1` runs the
                // last iteration of each window, so its file is the
                // sequential state the remainder and later sections
                // expect.
                let mut banks = vec![_mm_setzero_si128(); BANK * nregs];
                for u in 0..BANK {
                    banks[u * nregs..(u + 1) * nregs].copy_from_slice(regs);
                }
                while k + BANK as i64 <= iters {
                    $sect::<BANK>(ops, k, elem, nregs, &mut banks, mem);
                    k += BANK as i64;
                }
                regs.copy_from_slice(&banks[(BANK - 1) * nregs..]);
            }
            for kk in k..iters {
                $sect::<1>(ops, kk, elem, nregs, regs, mem);
            }
        }

        #[target_feature(enable = $features)]
        fn $run(plan: &Plan<'_>, mem: &mut [u8]) {
            let nregs = plan.nregs;
            let mut regs = vec![_mm_setzero_si128(); nregs];
            let elem = plan.elem;
            $sect::<1>(plan.prologue, 0, elem, nregs, &mut regs, mem);
            if plan.pair_iters > 0 {
                $sect::<1>(plan.pair_header, 0, elem, nregs, &mut regs, mem);
                $looped(plan.pair, plan.pair_iters, plan.pair_banked, elem, nregs, &mut regs, mem);
            }
            if plan.body_iters > 0 {
                $sect::<1>(plan.body_header, 0, elem, nregs, &mut regs, mem);
                $looped(plan.body, plan.body_iters, plan.body_banked, elem, nregs, &mut regs, mem);
            }
            $sect::<1>(plan.epilogue, 0, elem, nregs, &mut regs, mem);
        }
    };
}

tier!(
    run_sse2,
    sect_sse2,
    looped_sse2,
    "sse2",
    shift_sse2,
    splice_sse2,
    perm_sse2,
    bin_sse2,
    un_sse2
);
tier!(
    run_avx2,
    sect_avx2,
    looped_avx2,
    "ssse3,sse4.1,avx2",
    shift_avx2,
    splice_avx2,
    perm_avx2,
    bin_avx2,
    un_avx2
);

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_prng::SplitMix64;

    fn random_reg(rng: &mut SplitMix64) -> Reg {
        let mut r = [0u8; 16];
        for chunk in r.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        r
    }

    /// Every per-op helper against its scalar reference, on both tiers,
    /// across all shift amounts, splice points, ops and element types.
    #[test]
    fn tier_helpers_match_scalar_reference() {
        let mut rng = SplitMix64::seed_from_u64(0x51D);
        let wide = IsaLevel::Avx2.available();
        for _ in 0..64 {
            let ar = random_reg(&mut rng);
            let br = random_reg(&mut rng);
            // SAFETY: SSE2 is architecturally guaranteed on x86_64.
            let (a, b) = unsafe { (from_bytes(&ar), from_bytes(&br)) };
            for amt in 0..=16u8 {
                let mut want = [0u8; 16];
                want[..16 - amt as usize].copy_from_slice(&ar[amt as usize..]);
                want[16 - amt as usize..].copy_from_slice(&br[..amt as usize]);
                // SAFETY: as above; avx2 side gated on the runtime probe.
                unsafe {
                    assert_eq!(to_bytes(shift_sse2(a, b, amt)), want, "sse2 shift {amt}");
                    if wide {
                        assert_eq!(to_bytes(shift_avx2(a, b, amt)), want, "avx2 shift {amt}");
                    }
                }
            }
            for point in 0..=16usize {
                let mut mask = [0u8; 16];
                mask[..point].fill(0xFF);
                let mut want = br;
                want[..point].copy_from_slice(&ar[..point]);
                // SAFETY: as above.
                unsafe {
                    assert_eq!(to_bytes(splice_sse2(a, b, &mask)), want, "sse2 splice");
                    if wide {
                        assert_eq!(to_bytes(splice_avx2(a, b, &mask)), want, "avx2 splice");
                    }
                }
            }
            for ty in simdize_ir::ScalarType::ALL {
                for op in [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Min,
                    BinOp::Max,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                ] {
                    let want = lanes::bin(op, ty, &ar, &br);
                    // SAFETY: as above.
                    unsafe {
                        assert_eq!(to_bytes(bin_sse2(op, ty, a, b)), want, "sse2 {op:?} {ty}");
                        if wide {
                            assert_eq!(to_bytes(bin_avx2(op, ty, a, b)), want, "avx2 {op:?} {ty}");
                        }
                    }
                }
                for op in [UnOp::Neg, UnOp::Not, UnOp::Abs] {
                    let want = lanes::un(op, ty, &ar);
                    // SAFETY: as above.
                    unsafe {
                        assert_eq!(to_bytes(un_sse2(op, ty, a)), want, "sse2 {op:?} {ty}");
                        if wide {
                            assert_eq!(to_bytes(un_avx2(op, ty, a)), want, "avx2 {op:?} {ty}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn perm_gathers_from_both_halves() {
        let mut rng = SplitMix64::seed_from_u64(0x9E47);
        let ar = random_reg(&mut rng);
        let br = random_reg(&mut rng);
        let mut pattern = [0u8; 16];
        let mut lo = [0x80u8; 16];
        let mut hi = [0x80u8; 16];
        for t in 0..16 {
            let sel = ((t * 7 + 3) % 32) as u8;
            pattern[t] = sel;
            if sel < 16 {
                lo[t] = sel;
            } else {
                hi[t] = sel - 16;
            }
        }
        let mut pair = [0u8; 32];
        pair[..16].copy_from_slice(&ar);
        pair[16..].copy_from_slice(&br);
        let mut want = [0u8; 16];
        for t in 0..16 {
            want[t] = pair[pattern[t] as usize];
        }
        // SAFETY: SSE2 statically guaranteed; avx2 behind the probe.
        unsafe {
            let (a, b) = (from_bytes(&ar), from_bytes(&br));
            assert_eq!(to_bytes(perm_sse2(a, b, &pattern, &lo, &hi)), want);
            if IsaLevel::Avx2.available() {
                assert_eq!(to_bytes(perm_avx2(a, b, &pattern, &lo, &hi)), want);
            }
        }
    }
}
