//! The real-intrinsics backend: lowering baked plans to `std::arch`.
//!
//! [`SimdKernel::lower`] translates a baked (and trace-fused)
//! [`CompiledKernel`] into a flat `NOp` program whose every operand
//! is ready for a 128-bit register file — splice points expanded to
//! byte-select masks, permutation patterns split into the two
//! `pshufb`-style half-tables — then replays it through one of four
//! instruction tiers picked by [`IsaLevel`]:
//!
//! | VIR form        | SSE2                               | AVX2 tier                | NEON            |
//! |-----------------|------------------------------------|--------------------------|-----------------|
//! | `vload`/`.fused`| `movdqu` (chunk-aligned address)   | same                     | `vld1q_u8`      |
//! | `vshiftpair`    | `psrldq`+`pslldq`+`por`            | `palignr`                | `vextq_u8`      |
//! | `vsplice`       | `pand`/`pandn`/`por` mask select   | `pblendvb`               | `vbslq_u8`      |
//! | `vperm`         | scalar byte gather                 | 2×`pshufb`+`por`         | `vqtbl2q_u8`    |
//! | `vsplat`        | immediate register image           | same                     | same            |
//! | arithmetic      | `padd*`/`psub*`/`pmullw`/…         | + `pmulld`, full min/max | `vaddq`/`vsubq`/…|
//!
//! The fused `vload.fused` forms from the trace pass are already
//! single loads, so they lower to one `movdqu` — the paper's whole
//! lowering table lands on real instructions. Operation/width pairs a
//! tier has no instruction for (64-bit multiply, for example) fall
//! back per-op to the `crate::lanes` reference loops on
//! register copies, so every tier is total and byte-identical to the
//! interpreter by construction.
//!
//! `unsafe` lives only in the two per-architecture modules; the
//! portable tier and everything here stay safe. Stats come straight
//! from the base kernel (they are computed analytically before fusion),
//! so interpreter, fused engine and intrinsics backend agree on
//! [`RunStats`] by construction too.

use crate::kernel::{CompiledKernel, Op};
use crate::lanes::Reg;
use simdize_codegen::SimdProgram;
use simdize_ir::{BinOp, ScalarType, UnOp};
use simdize_telemetry as telemetry;
use simdize_vm::{ExecError, Executor, MemoryImage, RunInput, RunStats};

mod isa;
mod portable;

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86;

pub use isa::IsaLevel;

/// One lowered native instruction. Compared to the interpreter's
/// [`Op`], everything an intrinsic wants precomputed is precomputed at
/// lowering time: splices carry their byte-select mask, permutations
/// carry the two half-register shuffle tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum NOp {
    Load {
        dst: u32,
        start: i64,
        step: i64,
    },
    Store {
        src: u32,
        start: i64,
        step: i64,
    },
    Shift {
        dst: u32,
        a: u32,
        b: u32,
        amt: u8,
    },
    Splice {
        dst: u32,
        a: u32,
        b: u32,
        /// `0xFF` where the output byte comes from `a` (index < point),
        /// `0x00` where it comes from `b` — the operand `pblendvb` /
        /// `vbslq_u8` take directly.
        mask: Reg,
    },
    Perm {
        dst: u32,
        a: u32,
        b: u32,
        /// The original 0..32 selector, for the scalar tiers.
        pattern: [u8; 16],
        /// `pshufb` table over `a`: selector when < 16, else `0x80`
        /// (shuffle-to-zero).
        lo: Reg,
        /// `pshufb` table over `b`: selector − 16 when ≥ 16, else `0x80`.
        hi: Reg,
    },
    Splat {
        dst: u32,
        bytes: Reg,
    },
    Bin {
        dst: u32,
        op: BinOp,
        a: u32,
        b: u32,
    },
    BinImm {
        dst: u32,
        op: BinOp,
        a: u32,
        imm: Reg,
        imm_left: bool,
    },
    Un {
        dst: u32,
        op: UnOp,
        a: u32,
    },
    Copy {
        dst: u32,
        src: u32,
    },
}

/// A borrowed view of one lowered kernel, handed to the per-tier
/// executors so each tier is a single monomorphic function.
pub(crate) struct Plan<'a> {
    pub(crate) prologue: &'a [NOp],
    pub(crate) pair_header: &'a [NOp],
    pub(crate) pair: &'a [NOp],
    pub(crate) pair_iters: i64,
    pub(crate) body_header: &'a [NOp],
    pub(crate) body: &'a [NOp],
    pub(crate) body_iters: i64,
    pub(crate) epilogue: &'a [NOp],
    pub(crate) nregs: usize,
    pub(crate) elem: ScalarType,
    /// Whether the unrolled pair loop may run [`BANK`] iterations per
    /// op dispatch (see [`body_is_bankable`]).
    pub(crate) pair_banked: bool,
    /// Same, for the steady-state body loop.
    pub(crate) body_banked: bool,
}

/// How many body iterations a banked executor runs per op dispatch.
///
/// Banking is the backend's answer to dispatch overhead: an
/// interpreter loop pays the match-and-branch cost once per op per
/// iteration, which on a four-op body is most of the cycle budget.
/// When [`body_is_bankable`] proves the body free of loop-carried
/// register and memory dependences, the executors keep `BANK`
/// independent register files and dispatch each op once per `BANK`
/// iterations — amortizing the dispatch 4× and handing the CPU four
/// independent dependency chains to overlap.
pub(crate) const BANK: usize = 4;

/// The registers an op reads (before it writes its destination).
fn op_sources(op: &NOp) -> [Option<u32>; 2] {
    match *op {
        NOp::Load { .. } | NOp::Splat { .. } => [None, None],
        NOp::Store { src, .. } | NOp::Copy { src, .. } => [Some(src), None],
        NOp::Shift { a, b, .. }
        | NOp::Splice { a, b, .. }
        | NOp::Perm { a, b, .. }
        | NOp::Bin { a, b, .. } => [Some(a), Some(b)],
        NOp::BinImm { a, .. } | NOp::Un { a, .. } => [Some(a), None],
    }
}

/// The register an op writes, if any.
fn op_dst(op: &NOp) -> Option<u32> {
    match *op {
        NOp::Load { dst, .. }
        | NOp::Shift { dst, .. }
        | NOp::Splice { dst, .. }
        | NOp::Perm { dst, .. }
        | NOp::Splat { dst, .. }
        | NOp::Bin { dst, .. }
        | NOp::BinImm { dst, .. }
        | NOp::Un { dst, .. }
        | NOp::Copy { dst, .. } => Some(dst),
        NOp::Store { .. } => None,
    }
}

/// Whether a loop section (the unrolled pair loop or the steady-state
/// body) can legally run [`BANK`] iterations per op dispatch with
/// per-iteration register files.
///
/// Banking reorders execution: op `i` runs for iterations `k..k+BANK`
/// before op `i+1` runs for any of them. That is observationally
/// equivalent to the sequential schedule exactly when
///
/// 1. no register carries a value between body iterations — every
///    register the body reads is either written earlier *in the same
///    iteration* or never written by the body at all (a loop
///    invariant, replicated identically into every bank), and
/// 2. no two memory accesses from *different* iterations inside one
///    bank window overlap, unless both are loads. All accesses must
///    share one step for the window algebra below to close the check.
///
/// Software-pipelined bodies (a register reused from the previous
/// iteration) fail condition 1 and run on the sequential schedule;
/// loops with a dependence distance under `BANK` vectors fail
/// condition 2.
fn body_is_bankable(body: &[NOp]) -> bool {
    let mut written: Vec<u32> = Vec::new();
    let mut live_in: Vec<u32> = Vec::new();
    for op in body {
        for src in op_sources(op).into_iter().flatten() {
            if !written.contains(&src) && !live_in.contains(&src) {
                live_in.push(src);
            }
        }
        if let Some(dst) = op_dst(op) {
            written.push(dst);
        }
    }
    if live_in.iter().any(|r| written.contains(r)) {
        return false;
    }
    let mut accesses: Vec<(i64, i64, bool)> = Vec::new();
    for op in body {
        match *op {
            NOp::Load { start, step, .. } => accesses.push((start, step, false)),
            NOp::Store { src: _, start, step } => accesses.push((start, step, true)),
            _ => {}
        }
    }
    let Some(&(_, step, _)) = accesses.first() else {
        return true;
    };
    if accesses.iter().any(|&(_, s, _)| s != step) {
        return false;
    }
    for &(s1, _, store1) in &accesses {
        for &(s2, _, store2) in &accesses {
            if !store1 && !store2 {
                continue;
            }
            // `s1` at iteration `k + delta` against `s2` at `k`; the
            // ordered double loop covers negative deltas by symmetry.
            for delta in 1..BANK as i64 {
                if (s1 + delta * step - s2).abs() < 16 {
                    return false;
                }
            }
        }
    }
    true
}

fn lower_op(op: &Op) -> NOp {
    match *op {
        // Fused shifted loads are already single loads; the backend
        // keeps them as one movdqu/vld1q each.
        Op::Load { dst, start, step, .. } | Op::LoadFused { dst, start, step, .. } => {
            NOp::Load { dst, start, step }
        }
        Op::Store { src, start, step, .. } => NOp::Store { src, start, step },
        Op::Shift { dst, a, b, amt } => NOp::Shift { dst, a, b, amt },
        Op::Splice { dst, a, b, point } => {
            let mut mask = [0u8; 16];
            for byte in mask.iter_mut().take(point as usize) {
                *byte = 0xFF;
            }
            NOp::Splice { dst, a, b, mask }
        }
        Op::Perm { dst, a, b, ref pattern } => {
            let mut lo = [0x80u8; 16];
            let mut hi = [0x80u8; 16];
            for (t, &sel) in pattern.iter().enumerate() {
                if sel < 16 {
                    lo[t] = sel;
                } else {
                    hi[t] = sel - 16;
                }
            }
            NOp::Perm { dst, a, b, pattern: *pattern, lo, hi }
        }
        Op::Splat { dst, bytes } => NOp::Splat { dst, bytes },
        Op::Bin { dst, op, a, b } => NOp::Bin { dst, op, a, b },
        Op::BinSplat { dst, op, a, ref imm, imm_left } => NOp::BinImm {
            dst,
            op,
            a,
            imm: *imm,
            imm_left,
        },
        Op::Un { dst, op, a } => NOp::Un { dst, op, a },
        Op::Copy { dst, src } => NOp::Copy { dst, src },
    }
}

fn lower_section(ops: &[Op]) -> Vec<NOp> {
    ops.iter().map(lower_op).collect()
}

/// A baked kernel lowered to real SIMD, pinned to one [`IsaLevel`].
///
/// Built with [`lower`](SimdKernel::lower) from any [`CompiledKernel`]
/// (typically a trace-fused one); [`run`](SimdKernel::run) replays the
/// lowered program through the tier's `std::arch` executor. Scalar
/// fallback kernels (the `ub ≤ 3B` guard) delegate to the base kernel
/// unchanged — there is no vector section to lower.
#[derive(Debug, Clone)]
pub struct SimdKernel {
    base: CompiledKernel,
    isa: IsaLevel,
    prologue: Vec<NOp>,
    pair_header: Vec<NOp>,
    pair: Vec<NOp>,
    body_header: Vec<NOp>,
    body: Vec<NOp>,
    epilogue: Vec<NOp>,
    pair_banked: bool,
    body_banked: bool,
}

impl SimdKernel {
    /// Lowers `kernel` for `isa`. A tier the current host cannot
    /// execute (wrong architecture, failed AVX2 probe) is clamped to
    /// the portable scalar tier, so lowering is total and `run` can
    /// never dispatch into unsupported instructions.
    pub fn lower(kernel: &CompiledKernel, isa: IsaLevel) -> SimdKernel {
        let _span = telemetry::span("lower");
        let isa = if isa.available() { isa } else { IsaLevel::Scalar };
        telemetry::tag("isa", isa);
        let pair = lower_section(&kernel.pair);
        let body = lower_section(&kernel.body);
        let pair_banked = body_is_bankable(&pair);
        let body_banked = body_is_bankable(&body);
        SimdKernel {
            prologue: lower_section(&kernel.prologue),
            pair_header: lower_section(&kernel.pair_header),
            pair,
            body_header: lower_section(&kernel.body_header),
            body,
            epilogue: lower_section(&kernel.epilogue),
            base: kernel.clone(),
            isa,
            pair_banked,
            body_banked,
        }
    }

    /// [`lower`](SimdKernel::lower) at the host's detected tier
    /// ([`IsaLevel::detect`], honoring the `SIMDIZE_ISA` override).
    pub fn lower_detected(kernel: &CompiledKernel) -> SimdKernel {
        SimdKernel::lower(kernel, IsaLevel::detect())
    }

    /// Compiles `program` and lowers it at the detected tier — the
    /// one-shot counterpart of [`CompiledKernel::compile`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`CompiledKernel::compile`].
    pub fn compile(
        program: &SimdProgram,
        image: &MemoryImage,
        input: &RunInput,
    ) -> Result<SimdKernel, ExecError> {
        Ok(SimdKernel::lower_detected(&CompiledKernel::compile(
            program, image, input,
        )?))
    }

    /// The instruction tier `run` dispatches to.
    pub fn isa(&self) -> IsaLevel {
        self.isa
    }

    /// The baked kernel this lowering came from.
    pub fn base(&self) -> &CompiledKernel {
        &self.base
    }

    /// The base kernel's analytic [`RunStats`] — identical across
    /// interpreter, fused engine and this backend by construction.
    pub fn stats(&self) -> RunStats {
        self.base.stats()
    }

    /// Whether the base kernel resolved to the scalar fallback path.
    pub fn is_fallback(&self) -> bool {
        self.base.is_fallback()
    }

    /// Whether `image` has the layout this kernel was baked for.
    pub fn layout_matches(&self, image: &MemoryImage) -> bool {
        self.base.layout_matches(image)
    }

    /// Executes the lowered kernel against `image`.
    ///
    /// # Errors
    ///
    /// [`ExecError::Unsupported`] when `image` has a different layout
    /// than compiled for; scalar-fallback kernels propagate the base
    /// kernel's faults.
    pub fn run(&self, image: &mut MemoryImage) -> Result<RunStats, ExecError> {
        if self.base.is_fallback() {
            return self.base.run(image);
        }
        let _span = telemetry::span("run");
        if !self.base.layout_matches(image) {
            return Err(ExecError::Unsupported {
                what: "a memory image with a different layout than compiled for",
            });
        }
        let plan = Plan {
            prologue: &self.prologue,
            pair_header: &self.pair_header,
            pair: &self.pair,
            pair_iters: self.base.pair_iters,
            body_header: &self.body_header,
            body: &self.body,
            body_iters: self.base.body_iters,
            epilogue: &self.epilogue,
            nregs: self.base.nregs,
            elem: self.base.elem,
            pair_banked: self.pair_banked,
            body_banked: self.body_banked,
        };
        let mem = image.bytes_mut();
        match self.isa {
            IsaLevel::Scalar => portable::exec(&plan, mem),
            #[cfg(target_arch = "x86_64")]
            IsaLevel::Sse2 => x86::exec(&plan, mem, false),
            #[cfg(target_arch = "x86_64")]
            IsaLevel::Avx2 => x86::exec(&plan, mem, true),
            #[cfg(target_arch = "aarch64")]
            IsaLevel::Neon => neon::exec(&plan, mem),
            // `lower` clamps foreign-architecture tiers to Scalar, so
            // this arm is only a totality backstop.
            #[allow(unreachable_patterns)]
            _ => portable::exec(&plan, mem),
        }
        Ok(self.base.stats())
    }
}

/// [`Executor`] running every program through the intrinsics backend
/// at the detected ISA tier — `simdize run --engine simd`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdEngine;

impl Executor for SimdEngine {
    fn execute(
        &self,
        program: &SimdProgram,
        image: &mut MemoryImage,
        input: &RunInput,
    ) -> Result<RunStats, ExecError> {
        SimdKernel::compile(program, image, input)?.run(image)
    }

    fn name(&self) -> &'static str {
        "simd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions, ReuseMode};
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    const FIG1: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 4; c: i32[128] @ 8; }
                        for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }";

    fn compile_at(src: &str, policy: Policy, ub: u64) -> (CompiledKernel, MemoryImage) {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(policy)
            .unwrap();
        let prog = generate(
            &g,
            &CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline),
        )
        .unwrap();
        let image = MemoryImage::with_seed(&p, VectorShape::V16, 0xC0FFEE);
        let kernel = CompiledKernel::compile(&prog, &image, &RunInput::with_ub(ub)).unwrap();
        (kernel, image)
    }

    fn tiers() -> Vec<IsaLevel> {
        IsaLevel::ALL
            .into_iter()
            .filter(|l| l.available())
            .collect()
    }

    #[test]
    fn every_available_tier_matches_the_fused_engine() {
        for policy in [Policy::Zero, Policy::Eager, Policy::Lazy, Policy::Dominant, Policy::Optimal] {
            let (kernel, image) = compile_at(FIG1, policy, 100);
            let mut reference = image.clone();
            let want_stats = kernel.run(&mut reference).unwrap();
            for isa in tiers() {
                let lowered = SimdKernel::lower(&kernel, isa);
                assert_eq!(lowered.isa(), isa);
                let mut got = image.clone();
                let stats = lowered.run(&mut got).unwrap();
                assert_eq!(stats, want_stats, "{policy:?} {isa}");
                assert_eq!(got.bytes(), reference.bytes(), "{policy:?} {isa}");
            }
        }
    }

    #[test]
    fn unavailable_tier_clamps_to_scalar() {
        let (kernel, _) = compile_at(FIG1, Policy::Zero, 100);
        let foreign = if cfg!(target_arch = "x86_64") {
            IsaLevel::Neon
        } else {
            IsaLevel::Avx2
        };
        if !foreign.available() {
            let lowered = SimdKernel::lower(&kernel, foreign);
            assert_eq!(lowered.isa(), IsaLevel::Scalar);
        }
    }

    const RUNTIME_UB: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 4; c: i32[128] @ 8; }
                              for i in 0..ub { a[i+3] = b[i+1] + c[i+2]; }";

    #[test]
    fn fallback_kernels_delegate_to_the_base_path() {
        // ub below the guard minimum trips the scalar fallback.
        let (kernel, image) = compile_at(RUNTIME_UB, Policy::Zero, 2);
        assert!(kernel.is_fallback());
        let lowered = SimdKernel::lower_detected(&kernel);
        assert!(lowered.is_fallback());
        let mut reference = image.clone();
        kernel.run(&mut reference).unwrap();
        let mut got = image.clone();
        lowered.run(&mut got).unwrap();
        assert_eq!(got.bytes(), reference.bytes());
    }

    #[test]
    fn layout_mismatch_is_rejected() {
        let (kernel, _) = compile_at(FIG1, Policy::Zero, 100);
        let other = parse_program(
            "arrays { a: i32[256] @ 0; b: i32[256] @ 4; c: i32[256] @ 8; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
        )
        .unwrap();
        let mut foreign = MemoryImage::with_seed(&other, VectorShape::V16, 1);
        let lowered = SimdKernel::lower_detected(&kernel);
        assert!(lowered.run(&mut foreign).is_err());
    }

    #[test]
    fn bankability_analysis_separates_independent_bodies_from_carried_ones() {
        // A misaligned-copy body: load, store, disjoint streams.
        let copy = [
            NOp::Load { dst: 0, start: 1024, step: 16 },
            NOp::Store { src: 0, start: 65536, step: 16 },
        ];
        assert!(body_is_bankable(&copy));

        // Software-pipelined shift: r1 is read before the body rewrites
        // it — a value carried across iterations.
        let pipelined = [
            NOp::Load { dst: 0, start: 1024, step: 16 },
            NOp::Shift { dst: 2, a: 1, b: 0, amt: 4 },
            NOp::Copy { dst: 1, src: 0 },
            NOp::Store { src: 2, start: 65536, step: 16 },
        ];
        assert!(!body_is_bankable(&pipelined));

        // A loop-invariant register (written by the header, only read
        // here) does not block banking.
        let invariant = [
            NOp::Load { dst: 0, start: 1024, step: 16 },
            NOp::Bin { dst: 2, op: BinOp::Add, a: 0, b: 7 },
            NOp::Store { src: 2, start: 65536, step: 16 },
        ];
        assert!(body_is_bankable(&invariant));

        // Store feeding a load one vector later: a dependence distance
        // inside the bank window.
        let close_dep = [
            NOp::Load { dst: 0, start: 1040, step: 16 },
            NOp::Store { src: 0, start: 1024, step: 16 },
        ];
        assert!(!body_is_bankable(&close_dep));

        // Same shape but BANK vectors apart — outside the window.
        let far_dep = [
            NOp::Load { dst: 0, start: 1024 + 16 * BANK as i64, step: 16 },
            NOp::Store { src: 0, start: 1024, step: 16 },
        ];
        assert!(body_is_bankable(&far_dep));

        // Mixed steps defeat the window algebra: conservatively refuse.
        let mixed_steps = [
            NOp::Load { dst: 0, start: 1024, step: 16 },
            NOp::Store { src: 0, start: 65536, step: 32 },
        ];
        assert!(!body_is_bankable(&mixed_steps));
    }

    #[test]
    fn banked_and_sequential_schedules_agree_on_long_trips() {
        // Long enough for banked windows plus a non-empty remainder on
        // every policy's body count.
        for policy in [Policy::Zero, Policy::Eager, Policy::Lazy, Policy::Dominant, Policy::Optimal] {
            let (kernel, image) = compile_at(FIG1, policy, 100);
            let mut reference = image.clone();
            kernel.run(&mut reference).unwrap();
            let lowered = SimdKernel::lower(&kernel, IsaLevel::Scalar);
            let mut got = image.clone();
            lowered.run(&mut got).unwrap();
            assert_eq!(
                got.bytes(),
                reference.bytes(),
                "{policy:?} banked={}/{}",
                lowered.pair_banked,
                lowered.body_banked
            );
        }
    }

    #[test]
    fn splice_masks_and_perm_tables_are_consistent() {
        let op = Op::Splice { dst: 0, a: 1, b: 2, point: 5 };
        match lower_op(&op) {
            NOp::Splice { mask, .. } => {
                for (i, byte) in mask.iter().enumerate() {
                    assert_eq!(*byte, if i < 5 { 0xFF } else { 0x00 });
                }
            }
            other => panic!("unexpected lowering: {other:?}"),
        }
        let mut pattern = [0u8; 16];
        for (i, sel) in pattern.iter_mut().enumerate() {
            *sel = (31 - i) as u8; // alternating halves, reversed
        }
        let op = Op::Perm { dst: 0, a: 1, b: 2, pattern };
        match lower_op(&op) {
            NOp::Perm { lo, hi, .. } => {
                for i in 0..16 {
                    let sel = pattern[i];
                    if sel < 16 {
                        assert_eq!((lo[i], hi[i]), (sel, 0x80));
                    } else {
                        assert_eq!((lo[i], hi[i]), (0x80, sel - 16));
                    }
                }
            }
            other => panic!("unexpected lowering: {other:?}"),
        }
    }
}
