//! aarch64 NEON tier. ASIMD is architecturally guaranteed on
//! aarch64, so like SSE2 on x86_64 this is a baseline, not a probed
//! tier: `vextq_u8` for `vshiftpair`, `vbslq_u8` for `vsplice`,
//! `vqtbl2q_u8` (out-of-range lanes read zero, our half-tables never
//! are) for `vperm`, `vld1q`/`vst1q` for the chunk-aligned streams and
//! the `vaddq`/`vsubq`/`vmulq`/`vminq`/`vmaxq`/`vabsq` families per
//! element width. 64-bit multiply/min/max fall back to the
//! [`lanes`] reference loops on register copies.
//!
//! This module and `x86` are the only two places in the crate allowed
//! to use `unsafe`; every block is a load/store intrinsic on an
//! exactly-16-byte slice or the baseline-feature tier entry.

use super::{NOp, Plan, BANK};
use crate::lanes::{self, Reg};
use core::arch::aarch64::*;
use simdize_ir::{BinOp, ScalarType, UnOp};

/// Safe dispatch into the NEON tier.
pub(super) fn exec(plan: &Plan<'_>, mem: &mut [u8]) {
    // SAFETY: NEON (ASIMD) is architecturally guaranteed on aarch64.
    unsafe { run_neon(plan, mem) }
}

#[inline]
#[target_feature(enable = "neon")]
fn to_bytes(v: uint8x16_t) -> Reg {
    let mut out = [0u8; 16];
    // SAFETY: `out` is exactly 16 writable bytes.
    unsafe { vst1q_u8(out.as_mut_ptr(), v) };
    out
}

#[inline]
#[target_feature(enable = "neon")]
fn from_bytes(r: &Reg) -> uint8x16_t {
    // SAFETY: `r` is exactly 16 readable bytes.
    unsafe { vld1q_u8(r.as_ptr()) }
}

#[inline]
#[target_feature(enable = "neon")]
fn emul_bin(op: BinOp, elem: ScalarType, a: uint8x16_t, b: uint8x16_t) -> uint8x16_t {
    from_bytes(&lanes::bin(op, elem, &to_bytes(a), &to_bytes(b)))
}

#[inline]
#[target_feature(enable = "neon")]
fn emul_un(op: UnOp, elem: ScalarType, a: uint8x16_t) -> uint8x16_t {
    from_bytes(&lanes::un(op, elem, &to_bytes(a)))
}

/// `vshiftpair` as a single `ext`: `vextq_u8(a, b, n)` takes the high
/// `16 − n` bytes of `a` followed by the low `n` bytes of `b`.
#[inline]
#[target_feature(enable = "neon")]
fn shift(a: uint8x16_t, b: uint8x16_t, amt: u8) -> uint8x16_t {
    macro_rules! arm {
        ($n:literal) => {
            vextq_u8::<$n>(a, b)
        };
    }
    match amt {
        0 => a,
        1 => arm!(1),
        2 => arm!(2),
        3 => arm!(3),
        4 => arm!(4),
        5 => arm!(5),
        6 => arm!(6),
        7 => arm!(7),
        8 => arm!(8),
        9 => arm!(9),
        10 => arm!(10),
        11 => arm!(11),
        12 => arm!(12),
        13 => arm!(13),
        14 => arm!(14),
        15 => arm!(15),
        _ => b,
    }
}

/// `vsplice` as a bit select: mask bit 1 takes `a`, 0 takes `b`.
#[inline]
#[target_feature(enable = "neon")]
fn splice(a: uint8x16_t, b: uint8x16_t, mask: &Reg) -> uint8x16_t {
    vbslq_u8(from_bytes(mask), a, b)
}

/// `vperm` as a two-register table lookup over the raw 0..32 pattern.
#[inline]
#[target_feature(enable = "neon")]
fn perm(a: uint8x16_t, b: uint8x16_t, pattern: &[u8; 16]) -> uint8x16_t {
    vqtbl2q_u8(uint8x16x2_t(a, b), from_bytes(pattern))
}

#[inline]
#[target_feature(enable = "neon")]
fn bin(op: BinOp, elem: ScalarType, a: uint8x16_t, b: uint8x16_t) -> uint8x16_t {
    let signed = elem.is_signed();
    match (op, elem.size()) {
        (BinOp::Add, 1) => vaddq_u8(a, b),
        (BinOp::Add, 2) => vreinterpretq_u8_u16(vaddq_u16(vreinterpretq_u16_u8(a), vreinterpretq_u16_u8(b))),
        (BinOp::Add, 4) => vreinterpretq_u8_u32(vaddq_u32(vreinterpretq_u32_u8(a), vreinterpretq_u32_u8(b))),
        (BinOp::Add, _) => vreinterpretq_u8_u64(vaddq_u64(vreinterpretq_u64_u8(a), vreinterpretq_u64_u8(b))),
        (BinOp::Sub, 1) => vsubq_u8(a, b),
        (BinOp::Sub, 2) => vreinterpretq_u8_u16(vsubq_u16(vreinterpretq_u16_u8(a), vreinterpretq_u16_u8(b))),
        (BinOp::Sub, 4) => vreinterpretq_u8_u32(vsubq_u32(vreinterpretq_u32_u8(a), vreinterpretq_u32_u8(b))),
        (BinOp::Sub, _) => vreinterpretq_u8_u64(vsubq_u64(vreinterpretq_u64_u8(a), vreinterpretq_u64_u8(b))),
        (BinOp::Mul, 1) => vmulq_u8(a, b),
        (BinOp::Mul, 2) => vreinterpretq_u8_u16(vmulq_u16(vreinterpretq_u16_u8(a), vreinterpretq_u16_u8(b))),
        (BinOp::Mul, 4) => vreinterpretq_u8_u32(vmulq_u32(vreinterpretq_u32_u8(a), vreinterpretq_u32_u8(b))),
        (BinOp::And, _) => vandq_u8(a, b),
        (BinOp::Or, _) => vorrq_u8(a, b),
        (BinOp::Xor, _) => veorq_u8(a, b),
        (BinOp::Min, 1) if signed => {
            vreinterpretq_u8_s8(vminq_s8(vreinterpretq_s8_u8(a), vreinterpretq_s8_u8(b)))
        }
        (BinOp::Min, 1) => vminq_u8(a, b),
        (BinOp::Min, 2) if signed => {
            vreinterpretq_u8_s16(vminq_s16(vreinterpretq_s16_u8(a), vreinterpretq_s16_u8(b)))
        }
        (BinOp::Min, 2) => vreinterpretq_u8_u16(vminq_u16(vreinterpretq_u16_u8(a), vreinterpretq_u16_u8(b))),
        (BinOp::Min, 4) if signed => {
            vreinterpretq_u8_s32(vminq_s32(vreinterpretq_s32_u8(a), vreinterpretq_s32_u8(b)))
        }
        (BinOp::Min, 4) => vreinterpretq_u8_u32(vminq_u32(vreinterpretq_u32_u8(a), vreinterpretq_u32_u8(b))),
        (BinOp::Max, 1) if signed => {
            vreinterpretq_u8_s8(vmaxq_s8(vreinterpretq_s8_u8(a), vreinterpretq_s8_u8(b)))
        }
        (BinOp::Max, 1) => vmaxq_u8(a, b),
        (BinOp::Max, 2) if signed => {
            vreinterpretq_u8_s16(vmaxq_s16(vreinterpretq_s16_u8(a), vreinterpretq_s16_u8(b)))
        }
        (BinOp::Max, 2) => vreinterpretq_u8_u16(vmaxq_u16(vreinterpretq_u16_u8(a), vreinterpretq_u16_u8(b))),
        (BinOp::Max, 4) if signed => {
            vreinterpretq_u8_s32(vmaxq_s32(vreinterpretq_s32_u8(a), vreinterpretq_s32_u8(b)))
        }
        (BinOp::Max, 4) => vreinterpretq_u8_u32(vmaxq_u32(vreinterpretq_u32_u8(a), vreinterpretq_u32_u8(b))),
        _ => emul_bin(op, elem, a, b),
    }
}

#[inline]
#[target_feature(enable = "neon")]
fn un(op: UnOp, elem: ScalarType, a: uint8x16_t) -> uint8x16_t {
    let signed = elem.is_signed();
    match (op, elem.size()) {
        (UnOp::Neg, 1) => vsubq_u8(vdupq_n_u8(0), a),
        (UnOp::Neg, 2) => vreinterpretq_u8_u16(vsubq_u16(vdupq_n_u16(0), vreinterpretq_u16_u8(a))),
        (UnOp::Neg, 4) => vreinterpretq_u8_u32(vsubq_u32(vdupq_n_u32(0), vreinterpretq_u32_u8(a))),
        (UnOp::Neg, _) => vreinterpretq_u8_u64(vsubq_u64(vdupq_n_u64(0), vreinterpretq_u64_u8(a))),
        (UnOp::Not, _) => vmvnq_u8(a),
        // abs on an unsigned type is the identity (lanes semantics).
        (UnOp::Abs, _) if !signed => a,
        // vabsq keeps MIN as MIN — exactly `wrapping_abs`.
        (UnOp::Abs, 1) => vreinterpretq_u8_s8(vabsq_s8(vreinterpretq_s8_u8(a))),
        (UnOp::Abs, 2) => vreinterpretq_u8_s16(vabsq_s16(vreinterpretq_s16_u8(a))),
        (UnOp::Abs, 4) => vreinterpretq_u8_s32(vabsq_s32(vreinterpretq_s32_u8(a))),
        _ => emul_un(op, elem, a),
    }
}

/// One straight-line section for `LANES` consecutive iterations; see
/// the tier macro in the `x86` module for the banked-schedule
/// contract. `regs` holds `LANES * nregs` registers, bank-major.
#[target_feature(enable = "neon")]
fn sect<const LANES: usize>(
    ops: &[NOp],
    k0: i64,
    elem: ScalarType,
    nregs: usize,
    regs: &mut [uint8x16_t],
    mem: &mut [u8],
) {
    for op in ops {
        match *op {
            NOp::Load { dst, start, step } => {
                for u in 0..LANES {
                    let at = (start + (k0 + u as i64) * step) as usize;
                    let src = &mem[at..at + 16];
                    // SAFETY: the slice is exactly 16 readable bytes.
                    regs[u * nregs + dst as usize] = unsafe { vld1q_u8(src.as_ptr()) };
                }
            }
            NOp::Store { src, start, step } => {
                for u in 0..LANES {
                    let at = (start + (k0 + u as i64) * step) as usize;
                    let v = regs[u * nregs + src as usize];
                    let out = &mut mem[at..at + 16];
                    // SAFETY: the slice is exactly 16 writable bytes.
                    unsafe { vst1q_u8(out.as_mut_ptr(), v) };
                }
            }
            NOp::Shift { dst, a, b, amt } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    regs[o + dst as usize] = shift(regs[o + a as usize], regs[o + b as usize], amt);
                }
            }
            NOp::Splice { dst, a, b, ref mask } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    regs[o + dst as usize] =
                        splice(regs[o + a as usize], regs[o + b as usize], mask);
                }
            }
            NOp::Perm { dst, a, b, ref pattern, .. } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    regs[o + dst as usize] = perm(regs[o + a as usize], regs[o + b as usize], pattern);
                }
            }
            NOp::Splat { dst, ref bytes } => {
                let v = from_bytes(bytes);
                for u in 0..LANES {
                    regs[u * nregs + dst as usize] = v;
                }
            }
            NOp::Bin { dst, op, a, b } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    regs[o + dst as usize] =
                        bin(op, elem, regs[o + a as usize], regs[o + b as usize]);
                }
            }
            NOp::BinImm { dst, op, a, ref imm, imm_left } => {
                let iv = from_bytes(imm);
                for u in 0..LANES {
                    let o = u * nregs;
                    let av = regs[o + a as usize];
                    regs[o + dst as usize] = if imm_left {
                        bin(op, elem, iv, av)
                    } else {
                        bin(op, elem, av, iv)
                    };
                }
            }
            NOp::Un { dst, op, a } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    regs[o + dst as usize] = un(op, elem, regs[o + a as usize]);
                }
            }
            NOp::Copy { dst, src } => {
                for u in 0..LANES {
                    let o = u * nregs;
                    regs[o + dst as usize] = regs[o + src as usize];
                }
            }
        }
    }
}

/// One loop section, banked when the lowering proved it legal and the
/// trip is long enough to fill a window.
#[target_feature(enable = "neon")]
fn looped(
    ops: &[NOp],
    iters: i64,
    banked: bool,
    elem: ScalarType,
    nregs: usize,
    regs: &mut [uint8x16_t],
    mem: &mut [u8],
) {
    let mut k = 0;
    if banked && iters >= BANK as i64 {
        // Bank `BANK - 1` runs the last iteration of each window, so
        // its file is the sequential state the remainder and later
        // sections expect.
        let mut banks = vec![vdupq_n_u8(0); BANK * nregs];
        for u in 0..BANK {
            banks[u * nregs..(u + 1) * nregs].copy_from_slice(regs);
        }
        while k + BANK as i64 <= iters {
            sect::<BANK>(ops, k, elem, nregs, &mut banks, mem);
            k += BANK as i64;
        }
        regs.copy_from_slice(&banks[(BANK - 1) * nregs..]);
    }
    for kk in k..iters {
        sect::<1>(ops, kk, elem, nregs, regs, mem);
    }
}

#[target_feature(enable = "neon")]
fn run_neon(plan: &Plan<'_>, mem: &mut [u8]) {
    let nregs = plan.nregs;
    let mut regs = vec![vdupq_n_u8(0); nregs];
    let elem = plan.elem;
    sect::<1>(plan.prologue, 0, elem, nregs, &mut regs, mem);
    if plan.pair_iters > 0 {
        sect::<1>(plan.pair_header, 0, elem, nregs, &mut regs, mem);
        looped(plan.pair, plan.pair_iters, plan.pair_banked, elem, nregs, &mut regs, mem);
    }
    if plan.body_iters > 0 {
        sect::<1>(plan.body_header, 0, elem, nregs, &mut regs, mem);
        looped(plan.body, plan.body_iters, plan.body_banked, elem, nregs, &mut regs, mem);
    }
    sect::<1>(plan.epilogue, 0, elem, nregs, &mut regs, mem);
}
