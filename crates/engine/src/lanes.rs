//! Width-specialized lane arithmetic on fixed 16-byte registers.
//!
//! The interpreter in `simdize-vm` decodes every lane through
//! [`simdize_ir::Value`], which allocates a `Vec<u8>` per lane result.
//! The engine instead dispatches once per instruction on
//! `(element width, signedness)` and runs a monomorphic loop over the
//! register bytes — no allocation, no per-lane branching. Two structural
//! choices keep the loops wide:
//!
//! * the operator `match` is resolved *once per register*, outside the
//!   lane loop: each arm hands a lane closure to a `map` helper whose
//!   body is a branch-free `as_chunks` sweep rustc autovectorizes;
//! * bitwise operations (`And`/`Or`/`Xor`/`Not`) are width-agnostic, so
//!   they skip lane decomposition entirely and run on the register's two
//!   `u64` words.
//!
//! The results must be *bit-identical* to `Value` semantics (wrapping
//! arithmetic, signedness-aware min/max, `abs(MIN) == MIN`); the tests
//! below pin that equivalence for every operation and element type.

use simdize_ir::{BinOp, ScalarType, UnOp};

/// One 16-byte vector register.
pub(crate) type Reg = [u8; 16];

/// The register as two little-endian `u64` words.
#[inline(always)]
fn words(r: &Reg) -> (u64, u64) {
    let (c, _) = r.as_chunks::<8>();
    (u64::from_le_bytes(c[0]), u64::from_le_bytes(c[1]))
}

/// Rebuilds a register from two little-endian `u64` words.
#[inline(always)]
fn from_words(lo: u64, hi: u64) -> Reg {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&lo.to_le_bytes());
    out[8..].copy_from_slice(&hi.to_le_bytes());
    out
}

macro_rules! width_ops {
    ($bin:ident, $un:ident, $map2:ident, $map1:ident, $n:literal, $u:ty, $s:ty) => {
        /// Applies `f` to every lane pair. The loop body is branch-free
        /// and chunk-exact, so rustc vectorizes it.
        #[inline(always)]
        fn $map2(a: &Reg, b: &Reg, f: impl Fn($u, $u) -> $u) -> Reg {
            let mut out = [0u8; 16];
            let (oc, _) = out.as_chunks_mut::<$n>();
            let (ac, _) = a.as_chunks::<$n>();
            let (bc, _) = b.as_chunks::<$n>();
            for ((o, x), y) in oc.iter_mut().zip(ac).zip(bc) {
                *o = f(<$u>::from_le_bytes(*x), <$u>::from_le_bytes(*y)).to_le_bytes();
            }
            out
        }

        /// Applies `f` to every lane.
        #[inline(always)]
        fn $map1(a: &Reg, f: impl Fn($u) -> $u) -> Reg {
            let mut out = [0u8; 16];
            let (oc, _) = out.as_chunks_mut::<$n>();
            let (ac, _) = a.as_chunks::<$n>();
            for (o, x) in oc.iter_mut().zip(ac) {
                *o = f(<$u>::from_le_bytes(*x)).to_le_bytes();
            }
            out
        }

        fn $bin(op: BinOp, signed: bool, a: &Reg, b: &Reg) -> Reg {
            match op {
                BinOp::Add => $map2(a, b, <$u>::wrapping_add),
                BinOp::Sub => $map2(a, b, <$u>::wrapping_sub),
                BinOp::Mul => $map2(a, b, <$u>::wrapping_mul),
                BinOp::Min if signed => $map2(a, b, |x, y| (x as $s).min(y as $s) as $u),
                BinOp::Min => $map2(a, b, <$u>::min),
                BinOp::Max if signed => $map2(a, b, |x, y| (x as $s).max(y as $s) as $u),
                BinOp::Max => $map2(a, b, <$u>::max),
                // Bitwise ops are intercepted on the u64-word path in
                // `bin`; these arms keep the per-width helpers total.
                BinOp::And => $map2(a, b, |x, y| x & y),
                BinOp::Or => $map2(a, b, |x, y| x | y),
                BinOp::Xor => $map2(a, b, |x, y| x ^ y),
            }
        }

        fn $un(op: UnOp, signed: bool, a: &Reg) -> Reg {
            match op {
                UnOp::Neg => $map1(a, <$u>::wrapping_neg),
                UnOp::Not => $map1(a, |x| !x),
                UnOp::Abs if signed => $map1(a, |x| (x as $s).wrapping_abs() as $u),
                UnOp::Abs => a.to_owned(),
            }
        }
    };
}

width_ops!(bin1, un1, map2_1, map1_1, 1, u8, i8);
width_ops!(bin2, un2, map2_2, map1_2, 2, u16, i16);
width_ops!(bin4, un4, map2_4, map1_4, 4, u32, i32);
width_ops!(bin8, un8, map2_8, map1_8, 8, u64, i64);

/// Applies `op` lane-wise over two registers of `ty` elements.
pub(crate) fn bin(op: BinOp, ty: ScalarType, a: &Reg, b: &Reg) -> Reg {
    if matches!(op, BinOp::And | BinOp::Or | BinOp::Xor) {
        // Width-agnostic: two u64 word operations regardless of lane count.
        let (al, ah) = words(a);
        let (bl, bh) = words(b);
        return match op {
            BinOp::And => from_words(al & bl, ah & bh),
            BinOp::Or => from_words(al | bl, ah | bh),
            _ => from_words(al ^ bl, ah ^ bh),
        };
    }
    let signed = ty.is_signed();
    match ty.size() {
        1 => bin1(op, signed, a, b),
        2 => bin2(op, signed, a, b),
        4 => bin4(op, signed, a, b),
        _ => bin8(op, signed, a, b),
    }
}

/// Applies `op` lane-wise over one register of `ty` elements.
pub(crate) fn un(op: UnOp, ty: ScalarType, a: &Reg) -> Reg {
    if op == UnOp::Not {
        // Width-agnostic complement on the register's two u64 words.
        let (lo, hi) = words(a);
        return from_words(!lo, !hi);
    }
    let signed = ty.is_signed();
    match ty.size() {
        1 => un1(op, signed, a),
        2 => un2(op, signed, a),
        4 => un4(op, signed, a),
        _ => un8(op, signed, a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::Value;
    use simdize_prng::SplitMix64;

    const BINS: [BinOp; 8] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
    ];
    const UNS: [UnOp; 3] = [UnOp::Neg, UnOp::Not, UnOp::Abs];

    fn value_bin(op: BinOp, ty: ScalarType, a: &Reg, b: &Reg) -> Reg {
        let d = ty.size();
        let mut out = [0u8; 16];
        for lane in 0..16 / d {
            let x = Value::from_le_bytes(ty, &a[lane * d..]);
            let y = Value::from_le_bytes(ty, &b[lane * d..]);
            out[lane * d..lane * d + d].copy_from_slice(&op.apply(x, y).to_le_bytes());
        }
        out
    }

    fn value_un(op: UnOp, ty: ScalarType, a: &Reg) -> Reg {
        let d = ty.size();
        let mut out = [0u8; 16];
        for lane in 0..16 / d {
            let x = Value::from_le_bytes(ty, &a[lane * d..]);
            out[lane * d..lane * d + d].copy_from_slice(&op.apply(x).to_le_bytes());
        }
        out
    }

    fn random_reg(rng: &mut SplitMix64) -> Reg {
        let mut r = [0u8; 16];
        for chunk in r.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes()[..chunk.len()]);
        }
        r
    }

    #[test]
    fn bit_identical_to_value_semantics() {
        let mut rng = SplitMix64::seed_from_u64(0x1A7E5);
        for ty in ScalarType::ALL {
            for _ in 0..64 {
                let a = random_reg(&mut rng);
                let b = random_reg(&mut rng);
                for op in BINS {
                    assert_eq!(bin(op, ty, &a, &b), value_bin(op, ty, &a, &b), "{op:?} {ty}");
                }
                for op in UNS {
                    assert_eq!(un(op, ty, &a), value_un(op, ty, &a), "{op:?} {ty}");
                }
            }
        }
    }

    #[test]
    fn edge_patterns_match() {
        // Lane extremes: MIN/MAX patterns where abs/neg/min diverge
        // between naive and wrapping implementations.
        let min8 = [0x80u8; 16];
        let ff = [0xFFu8; 16];
        let zero = [0u8; 16];
        for ty in ScalarType::ALL {
            for a in [&min8, &ff, &zero] {
                for b in [&min8, &ff, &zero] {
                    for op in BINS {
                        assert_eq!(bin(op, ty, a, b), value_bin(op, ty, a, b), "{op:?} {ty}");
                    }
                }
                for op in UNS {
                    assert_eq!(un(op, ty, a), value_un(op, ty, a), "{op:?} {ty}");
                }
            }
        }
    }

    #[test]
    fn word_helpers_round_trip() {
        let mut rng = SplitMix64::seed_from_u64(0xB17);
        for _ in 0..32 {
            let r = random_reg(&mut rng);
            let (lo, hi) = words(&r);
            assert_eq!(from_words(lo, hi), r);
        }
    }
}
