//! Width-specialized lane arithmetic on fixed 16-byte registers.
//!
//! The interpreter in `simdize-vm` decodes every lane through
//! [`simdize_ir::Value`], which allocates a `Vec<u8>` per lane result.
//! The engine instead dispatches once per instruction on
//! `(element width, signedness)` and runs a monomorphic loop over the
//! register bytes — no allocation, no per-lane branching. The results
//! must be *bit-identical* to `Value` semantics (wrapping arithmetic,
//! signedness-aware min/max, `abs(MIN) == MIN`); the tests below pin
//! that equivalence for every operation and element type.

use simdize_ir::{BinOp, ScalarType, UnOp};

/// One 16-byte vector register.
pub(crate) type Reg = [u8; 16];

macro_rules! width_ops {
    ($bin:ident, $un:ident, $n:literal, $u:ty, $s:ty) => {
        fn $bin(op: BinOp, signed: bool, a: &Reg, b: &Reg) -> Reg {
            let mut out = [0u8; 16];
            for lane in 0..16 / $n {
                let at = lane * $n;
                let x = <$u>::from_le_bytes(a[at..at + $n].try_into().unwrap());
                let y = <$u>::from_le_bytes(b[at..at + $n].try_into().unwrap());
                let r: $u = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Min if signed => (x as $s).min(y as $s) as $u,
                    BinOp::Min => x.min(y),
                    BinOp::Max if signed => (x as $s).max(y as $s) as $u,
                    BinOp::Max => x.max(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                };
                out[at..at + $n].copy_from_slice(&r.to_le_bytes());
            }
            out
        }

        fn $un(op: UnOp, signed: bool, a: &Reg) -> Reg {
            let mut out = [0u8; 16];
            for lane in 0..16 / $n {
                let at = lane * $n;
                let x = <$u>::from_le_bytes(a[at..at + $n].try_into().unwrap());
                let r: $u = match op {
                    UnOp::Neg => x.wrapping_neg(),
                    UnOp::Not => !x,
                    UnOp::Abs if signed => (x as $s).wrapping_abs() as $u,
                    UnOp::Abs => x,
                };
                out[at..at + $n].copy_from_slice(&r.to_le_bytes());
            }
            out
        }
    };
}

width_ops!(bin1, un1, 1, u8, i8);
width_ops!(bin2, un2, 2, u16, i16);
width_ops!(bin4, un4, 4, u32, i32);
width_ops!(bin8, un8, 8, u64, i64);

/// Applies `op` lane-wise over two registers of `ty` elements.
pub(crate) fn bin(op: BinOp, ty: ScalarType, a: &Reg, b: &Reg) -> Reg {
    let signed = ty.is_signed();
    match ty.size() {
        1 => bin1(op, signed, a, b),
        2 => bin2(op, signed, a, b),
        4 => bin4(op, signed, a, b),
        _ => bin8(op, signed, a, b),
    }
}

/// Applies `op` lane-wise over one register of `ty` elements.
pub(crate) fn un(op: UnOp, ty: ScalarType, a: &Reg) -> Reg {
    let signed = ty.is_signed();
    match ty.size() {
        1 => un1(op, signed, a),
        2 => un2(op, signed, a),
        4 => un4(op, signed, a),
        _ => un8(op, signed, a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::Value;
    use simdize_prng::SplitMix64;

    const BINS: [BinOp; 8] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
    ];
    const UNS: [UnOp; 3] = [UnOp::Neg, UnOp::Not, UnOp::Abs];

    fn value_bin(op: BinOp, ty: ScalarType, a: &Reg, b: &Reg) -> Reg {
        let d = ty.size();
        let mut out = [0u8; 16];
        for lane in 0..16 / d {
            let x = Value::from_le_bytes(ty, &a[lane * d..]);
            let y = Value::from_le_bytes(ty, &b[lane * d..]);
            out[lane * d..lane * d + d].copy_from_slice(&op.apply(x, y).to_le_bytes());
        }
        out
    }

    fn value_un(op: UnOp, ty: ScalarType, a: &Reg) -> Reg {
        let d = ty.size();
        let mut out = [0u8; 16];
        for lane in 0..16 / d {
            let x = Value::from_le_bytes(ty, &a[lane * d..]);
            out[lane * d..lane * d + d].copy_from_slice(&op.apply(x).to_le_bytes());
        }
        out
    }

    fn random_reg(rng: &mut SplitMix64) -> Reg {
        let mut r = [0u8; 16];
        for chunk in r.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes()[..chunk.len()]);
        }
        r
    }

    #[test]
    fn bit_identical_to_value_semantics() {
        let mut rng = SplitMix64::seed_from_u64(0x1A7E5);
        for ty in ScalarType::ALL {
            for _ in 0..64 {
                let a = random_reg(&mut rng);
                let b = random_reg(&mut rng);
                for op in BINS {
                    assert_eq!(bin(op, ty, &a, &b), value_bin(op, ty, &a, &b), "{op:?} {ty}");
                }
                for op in UNS {
                    assert_eq!(un(op, ty, &a), value_un(op, ty, &a), "{op:?} {ty}");
                }
            }
        }
    }

    #[test]
    fn edge_patterns_match() {
        // Lane extremes: MIN/MAX patterns where abs/neg/min diverge
        // between naive and wrapping implementations.
        let min8 = [0x80u8; 16];
        let ff = [0xFFu8; 16];
        let zero = [0u8; 16];
        for ty in ScalarType::ALL {
            for a in [&min8, &ff, &zero] {
                for b in [&min8, &ff, &zero] {
                    for op in BINS {
                        assert_eq!(bin(op, ty, a, b), value_bin(op, ty, a, b), "{op:?} {ty}");
                    }
                }
                for op in UNS {
                    assert_eq!(un(op, ty, a), value_un(op, ty, a), "{op:?} {ty}");
                }
            }
        }
    }
}
