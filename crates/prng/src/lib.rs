//! A small, dependency-free deterministic PRNG for the simdize
//! workspace.
//!
//! Everything random in this repository — synthesized workloads, memory
//! image placement and contents, sweep schedules — must be (a)
//! reproducible from a single `u64` seed and (b) buildable with no
//! registry access. [`SplitMix64`] provides both: it is the well-known
//! 64-bit finalizer-based generator (Steele, Lea & Flood, OOPSLA 2014),
//! passes BigCrush for our purposes, seeds in O(1), and fits in twenty
//! lines of safe code.
//!
//! The API mirrors the subset of `rand::Rng` the workspace actually
//! uses (`gen_range`-style integer ranges, a biased coin, uniform
//! floats), so call sites read the same as before the vendoring.
//!
//! # Example
//!
//! ```
//! use simdize_prng::SplitMix64;
//! let mut rng = SplitMix64::seed_from_u64(7);
//! let a = rng.next_u64();
//! let b = rng.range_u64(0, 10);      // 0 ≤ b < 10
//! let c = rng.range_inclusive(3, 5); // 3 ≤ c ≤ 5
//! let p = rng.chance(0.5);
//! assert!(b < 10 && (3..=5).contains(&c));
//! assert_eq!(SplitMix64::seed_from_u64(7).next_u64(), a);
//! let _ = p;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The SplitMix64 generator: 64 bits of state, one multiply-xor-shift
/// finalizer per output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Identical seeds produce
    /// identical streams on every platform.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Alias for [`SplitMix64::seed_from_u64`].
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64::seed_from_u64(seed)
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Multiply-shift range reduction (Lemire); the bias for our
        // range sizes (≤ 2^32) is < 2^-32 and irrelevant here.
        let span = hi - lo;
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// A uniform value in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        self.range_u64(lo, hi + 1)
    }

    /// A uniform index in `[0, len)` — the `choose` helper.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.range_u64(0, len as u64) as usize
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A biased coin: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// A uniform float in `[lo, hi]`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.uniform() * (hi - lo)
    }

    /// Derives an independent generator for a labelled subtask: the
    /// stream of `self.split(label)` is uncorrelated with `self`'s for
    /// distinct labels (both go through the SplitMix64 finalizer).
    pub fn split(&self, label: u64) -> SplitMix64 {
        let mut probe = SplitMix64 {
            state: self.state ^ label.wrapping_mul(0xA24B_AED4_963E_E407),
        };
        SplitMix64 {
            state: probe.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        let mut c = SplitMix64::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 0, from the published reference
        // implementation.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.range_u64(5, 17);
            assert!((5..17).contains(&v));
            let w = r.range_inclusive(0, 3);
            assert!(w <= 3);
            let i = r.index(7);
            assert!(i < 7);
            let f = r.uniform();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_hit_every_value() {
        let mut r = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.index(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
        // p = 0.5 lands somewhere strictly between.
        let hits = (0..1000).filter(|_| r.chance(0.5)).count();
        assert!((300..700).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn split_streams_diverge() {
        let base = SplitMix64::seed_from_u64(7);
        let mut a = base.split(1);
        let mut b = base.split(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
