//! Seeded fault injection: known-bad mutations of generated programs,
//! used to prove the prover itself catches what it claims to catch.
//!
//! A mutation perturbs one loop-invariant scalar expression of the
//! generated code — a `vsplice` point or a `vshiftpair` amount — by one
//! element width (modulo `V`, so the expression stays in its valid
//! range and the program still *executes*, just wrongly). The
//! mutate-and-catch meta-test injects one of these and asserts the
//! prover reports a violated property with a shrunk counterexample.

use simdize_codegen::{SExpr, SimdProgram, VInst};

/// The catalog of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Move the first `vsplice` point by one element width (mod `V`):
    /// the prologue/epilogue partial store preserves or overwrites the
    /// wrong window — the classic eq. 8/9 off-by-one.
    SpliceOffByOne,
    /// Move the first `vshiftpair` amount by one element width (mod
    /// `V`): a stream is realigned to the wrong offset — the classic
    /// (C.2)/(C.3) violation.
    ShiftOffByOne,
}

impl MutationKind {
    /// Kebab-case name (`splice`, `shift`) used by `--mutate`.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::SpliceOffByOne => "splice",
            MutationKind::ShiftOffByOne => "shift",
        }
    }

    /// Parses `splice` / `shift`.
    pub fn from_name(name: &str) -> Option<MutationKind> {
        match name {
            "splice" => Some(MutationKind::SpliceOffByOne),
            "shift" => Some(MutationKind::ShiftOffByOne),
            _ => None,
        }
    }
}

/// Applies `kind` to the first matching instruction of `program`
/// (searching prologue, body, unrolled pair, then epilogue, recursing
/// through guard bodies). Returns whether a site was found — a fully
/// aligned configuration may have no shift or splice to corrupt.
pub fn apply(program: &mut SimdProgram, kind: MutationKind) -> bool {
    let d = program.elem().size() as i64;
    let v = program.shape().bytes() as i64;
    if mutate_insts(program.prologue_mut(), kind, d, v)
        || mutate_insts(program.body_mut(), kind, d, v)
    {
        return true;
    }
    if let Some(pair) = program.body_pair_mut() {
        if mutate_insts(pair, kind, d, v) {
            return true;
        }
    }
    mutate_insts(program.epilogue_mut(), kind, d, v)
}

fn mutate_insts(insts: &mut [VInst], kind: MutationKind, d: i64, v: i64) -> bool {
    for inst in insts.iter_mut() {
        match (kind, inst) {
            (MutationKind::SpliceOffByOne, VInst::Splice { point, .. }) => {
                *point = point.clone().add(SExpr::c(d)).rem(SExpr::c(v));
                return true;
            }
            (MutationKind::ShiftOffByOne, VInst::ShiftPair { amt, .. }) => {
                *amt = amt.clone().add(SExpr::c(d)).rem(SExpr::c(v));
                return true;
            }
            // Not collapsible into a pattern guard: the recursion
            // needs `body` mutably, and guard bindings are immutable.
            #[allow(clippy::collapsible_match)]
            (_, VInst::Guarded { body, .. }) => {
                if mutate_insts(body, kind, d, v) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions, ReuseMode};
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    fn compiled() -> SimdProgram {
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 4; }
             for i in 0..40 { a[i+1] = b[i]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        generate(
            &g,
            &CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline),
        )
        .unwrap()
    }

    #[test]
    fn mutations_change_the_program() {
        for kind in [MutationKind::SpliceOffByOne, MutationKind::ShiftOffByOne] {
            let clean = compiled();
            let mut bad = clean.clone();
            assert!(apply(&mut bad, kind), "no site for {kind:?}");
            assert_ne!(clean, bad, "{kind:?} must alter the program");
        }
    }

    #[test]
    fn names_roundtrip() {
        for kind in [MutationKind::SpliceOffByOne, MutationKind::ShiftOffByOne] {
            assert_eq!(MutationKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(MutationKind::from_name("bogus"), None);
    }
}
