//! The shared enumeration driver and the four named harnesses.
//!
//! One *unit* is a `(configuration, alignment-vector)` pair; the driver
//! compiles each unit's program once and sweeps it over every trip
//! count and value probe, running each enabled harness and charging one
//! budget token per harness execution. Units are distributed over
//! scoped worker threads through an atomic cursor (long units don't
//! stall a static partition), and results are merged in unit order so
//! the report is deterministic regardless of thread count.

use crate::domain::{
    alignment_vectors, configs, known_trips, params_for, probes, realizable_offsets, rebuild,
    trip_cap, trips, Config, Mode, Probe, TripStyle, VerifyOptions,
};
use crate::mutate::{self, MutationKind};
use crate::report::{HarnessSummary, VerifyReport};
use crate::shrink;
use simdize_analysis::{analyze_program, AnalyzeOptions};
use simdize_codegen::{generate, generate_strided, CodegenOptions, ReuseMode, SimdProgram};
use simdize_engine::{
    program_fingerprint, CompiledKernel, KernelCache, KernelOptions, PredecodedKernel, SimdKernel,
};
use simdize_ir::{LoopProgram, TripCount, VectorShape};
use simdize_reorg::{Policy, ReorgGraph};
use simdize_vm::{run_scalar, run_simd, MemoryImage, RunInput, RunStats};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

/// The Kani-style property names, indexed by harness id.
pub const HARNESS_NAMES: [&str; 4] = [
    "harness_codegen_equiv",
    "harness_fusion_equiv",
    "harness_cache_coherence",
    "harness_native_equiv",
];

pub(crate) const H_CODEGEN: usize = 0;
pub(crate) const H_FUSION: usize = 1;
pub(crate) const H_CACHE: usize = 2;
pub(crate) const H_NATIVE: usize = 3;

/// Number of harnesses, for sizing per-harness accounting arrays.
pub(crate) const NH: usize = HARNESS_NAMES.len();

/// The verdict of one harness execution.
pub(crate) enum Verdict {
    /// The property held.
    Pass,
    /// The property is violated; the string says how.
    Violation(String),
}

/// One un-shrunk counterexample, as found by the sweep.
#[derive(Debug, Clone)]
pub(crate) struct RawCe {
    pub cfg: Config,
    pub aligns: Vec<u32>,
    pub trip: u64,
    pub style: TripStyle,
    pub probe: Probe,
    pub harness: usize,
    pub detail: String,
}

/// Compiles the loop variant a unit proves: alignments per `cfg.mode`,
/// the given trip form, the unit's reuse/unroll options, plus the
/// requested mutation. `None` means the configuration does not apply
/// (e.g. a compile-time-shift policy over runtime alignments, §4.4, or
/// a runtime trip count on a reduction or strided loop). Loops with a
/// non-unit-stride reference take the §7 pack/scatter generator, which
/// has no policy/reuse/unroll knobs.
pub(crate) fn compile_variant(
    base: &LoopProgram,
    cfg: Config,
    aligns: &[u32],
    trip: TripCount,
    mutation: Option<MutationKind>,
    shape: VectorShape,
) -> Option<(SimdProgram, bool)> {
    let src = rebuild(base, aligns, cfg.mode, trip);
    let mut prog = if is_strided(&src) {
        generate_strided(&src, shape).ok()?
    } else {
        let graph = ReorgGraph::build(&src, shape).ok()?.with_policy(cfg.policy).ok()?;
        let opts = CodegenOptions::default().reuse(cfg.reuse).unroll(cfg.unroll);
        generate(&graph, &opts).ok()?
    };
    let mutated = match mutation {
        Some(kind) => mutate::apply(&mut prog, kind),
        None => false,
    };
    Some((prog, mutated))
}

/// Whether any reference steps by more than one element (§7 extension).
pub(crate) fn is_strided(p: &LoopProgram) -> bool {
    p.all_refs().iter().any(|r| !r.is_unit_stride())
}

/// `harness_codegen_equiv`: the generated program, run by the VIR
/// interpreter, leaves memory byte-identical to the scalar oracle —
/// including the guard padding around every array.
pub(crate) fn harness_codegen_equiv(
    prog: &SimdProgram,
    img: &MemoryImage,
    oracle: &MemoryImage,
    input: &RunInput,
) -> (Verdict, Option<RunStats>) {
    let mut mem = img.clone();
    match run_simd(prog, &mut mem, input) {
        Ok(stats) => match mem.first_difference(oracle) {
            None => (Verdict::Pass, Some(stats)),
            Some(off) => (
                Verdict::Violation(format!(
                    "interpreter output differs from the scalar oracle at byte {off}"
                )),
                Some(stats),
            ),
        },
        Err(e) => (Verdict::Violation(format!("interpreter fault: {e}")), None),
    }
}

/// `harness_fusion_equiv`: the trace-fused compiled kernel produces the
/// oracle's bytes and (when the interpreter also ran) the interpreter's
/// exact [`RunStats`] — the fused/unfused accounting invariant.
pub(crate) fn harness_fusion_equiv(
    prog: &SimdProgram,
    img: &MemoryImage,
    oracle: &MemoryImage,
    input: &RunInput,
    interp_stats: Option<RunStats>,
) -> Verdict {
    let mut mem = img.clone();
    let kernel = match CompiledKernel::compile(prog, &mem, input) {
        Ok(k) => k,
        Err(e) => return Verdict::Violation(format!("bake fault: {e}")),
    };
    match kernel.run(&mut mem) {
        Ok(stats) => {
            if let Some(off) = mem.first_difference(oracle) {
                return Verdict::Violation(format!(
                    "fused engine output differs from the scalar oracle at byte {off}"
                ));
            }
            if let Some(is) = interp_stats {
                if is != stats {
                    return Verdict::Violation(format!(
                        "fused RunStats diverge from the interpreter ({} vs {} total ops)",
                        stats.total(),
                        is.total()
                    ));
                }
            }
            Verdict::Pass
        }
        Err(e) => Verdict::Violation(format!("fused engine fault: {e}")),
    }
}

/// `harness_native_equiv`: the intrinsics-lowered kernel, dispatched at
/// the host's detected ISA level (SSE2/AVX2/NEON or the portable scalar
/// tier — `SIMDIZE_ISA` can force a lower tier), produces the oracle's
/// bytes and (when the interpreter also ran) its exact [`RunStats`].
/// Stats are computed before lowering, so any divergence here is a
/// lowering or intrinsics bug, not an accounting one.
pub(crate) fn harness_native_equiv(
    prog: &SimdProgram,
    img: &MemoryImage,
    oracle: &MemoryImage,
    input: &RunInput,
    interp_stats: Option<RunStats>,
) -> Verdict {
    let mut mem = img.clone();
    let kernel = match CompiledKernel::compile(prog, &mem, input) {
        Ok(k) => k,
        Err(e) => return Verdict::Violation(format!("bake fault: {e}")),
    };
    let lowered = SimdKernel::lower_detected(&kernel);
    match lowered.run(&mut mem) {
        Ok(stats) => {
            if let Some(off) = mem.first_difference(oracle) {
                return Verdict::Violation(format!(
                    "simd backend ({}) output differs from the scalar oracle at byte {off}",
                    lowered.isa()
                ));
            }
            if let Some(is) = interp_stats {
                if is != stats {
                    return Verdict::Violation(format!(
                        "simd backend ({}) RunStats diverge from the interpreter ({} vs {} total ops)",
                        lowered.isa(),
                        stats.total(),
                        is.total()
                    ));
                }
            }
            Verdict::Pass
        }
        Err(e) => Verdict::Violation(format!("simd backend ({}) fault: {e}", lowered.isa())),
    }
}

/// `harness_cache_coherence`: for one `(program, input, layout)` key, a
/// [`KernelCache`] hit runs byte-identically to a fresh bake, and the
/// second lookup of the key actually hits.
pub(crate) fn harness_cache_coherence(
    fingerprint: u64,
    pre: &PredecodedKernel,
    cache: &KernelCache,
    img: &MemoryImage,
    oracle: &MemoryImage,
    input: &RunInput,
    kopts: &KernelOptions,
) -> Verdict {
    let (k1, _) = match cache.get_or_bake(fingerprint, pre, img, input, kopts) {
        Ok(r) => r,
        Err(e) => return Verdict::Violation(format!("cache bake fault: {e}")),
    };
    let mut m1 = img.clone();
    let s1 = match k1.run(&mut m1) {
        Ok(s) => s,
        Err(e) => return Verdict::Violation(format!("cached kernel fault: {e}")),
    };
    let (k2, l2) = match cache.get_or_bake(fingerprint, pre, img, input, kopts) {
        Ok(r) => r,
        Err(e) => return Verdict::Violation(format!("cache bake fault: {e}")),
    };
    if !l2.hit {
        return Verdict::Violation(
            "second lookup of an identical (program, input, layout) key missed the cache"
                .to_string(),
        );
    }
    let mut m2 = img.clone();
    let s2 = match k2.run(&mut m2) {
        Ok(s) => s,
        Err(e) => return Verdict::Violation(format!("cache-hit kernel fault: {e}")),
    };
    let fresh = match pre.bake(img, input, kopts) {
        Ok(k) => k,
        Err(e) => return Verdict::Violation(format!("fresh bake fault: {e}")),
    };
    let mut m3 = img.clone();
    let s3 = match fresh.run(&mut m3) {
        Ok(s) => s,
        Err(e) => return Verdict::Violation(format!("fresh kernel fault: {e}")),
    };
    if let Some(off) = m2.first_difference(&m3) {
        return Verdict::Violation(format!(
            "cache hit differs from a fresh bake at byte {off}"
        ));
    }
    if m1.first_difference(&m2).is_some() || s1 != s2 || s2 != s3 {
        return Verdict::Violation(
            "cached and fresh kernels disagree on outputs or stats".to_string(),
        );
    }
    if let Some(off) = m3.first_difference(oracle) {
        return Verdict::Violation(format!(
            "fresh bake differs from the scalar oracle at byte {off}"
        ));
    }
    Verdict::Pass
}

/// Per-unit sweep results, merged into the report in unit order.
#[derive(Default)]
struct UnitOutcome {
    compiled: bool,
    mutated: bool,
    points: u64,
    points_skipped: u64,
    harness_runs: [u64; NH],
    harness_viol: [u64; NH],
    lint_deny: usize,
    violations: Vec<RawCe>,
    exhausted: bool,
}

/// Takes one budget token; `false` means the budget is spent.
fn take(spent: &AtomicU64, budget: u64) -> bool {
    spent.fetch_add(1, Ordering::Relaxed) < budget
}

#[allow(clippy::too_many_arguments)]
fn run_unit(
    base: &LoopProgram,
    cfg: Config,
    aligns: &[u32],
    opts: &VerifyOptions,
    shape: VectorShape,
    block: u64,
    trips_ub: &[u64],
    trips_known: &[u64],
    spent: &AtomicU64,
) -> UnitOutcome {
    let mut out = UnitOutcome::default();
    let params = params_for(base);
    let kopts = KernelOptions::new().disassembly(false);
    let cache = KernelCache::new(1, 4);
    // One violation per harness per unit is recorded; the rest of the
    // unit's sweep for that harness is redundant evidence.
    let mut found = [false; NH];
    let mut lint_done = false;
    // The reuse-discipline lint only applies to the stream generator;
    // the §7 strided generator does not pipeline chunks.
    let lint_deny_count = |prog: &SimdProgram| {
        let mut lopts = AnalyzeOptions::new().memnorm(true);
        if !is_strided(base) {
            lopts = lopts.reuse(cfg.reuse);
        }
        analyze_program(prog, &lopts).deny_count()
    };

    // Runtime-`ub` pass (eqs 13/15). Reductions and strided loops have
    // no runtime-trip compilation; `trips_ub` arrives empty for them
    // and the known-trip pass below carries the whole proof.
    let mut cache_proved_here = false;
    let runtime_variant = if trips_ub.is_empty() {
        None
    } else {
        compile_variant(base, cfg, aligns, TripCount::Runtime, opts.mutation, shape)
    };
    if let Some((prog, mutated)) = runtime_variant {
    out.compiled = true;
    out.mutated = mutated;
    out.lint_deny = lint_deny_count(&prog);
    lint_done = true;

    let fingerprint = program_fingerprint(&prog);
    let pre = PredecodedKernel::new(&prog).ok();
    cache_proved_here = pre.is_some();
    let src = prog.source().clone();

    'sweep: for &trip in trips_ub {
        let input = RunInput {
            ub: trip,
            params: params.clone(),
        };
        for (pi, probe) in probes(trip, block, opts.trip_bound, opts.quick, trip)
            .into_iter()
            .enumerate()
        {
            let img = probe.build_image(&src, shape, aligns);
            let mut oracle = img.clone();
            if run_scalar(&src, &mut oracle, trip, &params).is_err() {
                out.points_skipped += 1;
                continue;
            }
            out.points += 1;

            let mut interp_stats = None;
            if !found[H_CODEGEN] {
                if !take(spent, opts.budget) {
                    out.exhausted = true;
                    break 'sweep;
                }
                out.harness_runs[H_CODEGEN] += 1;
                let (verdict, stats) = harness_codegen_equiv(&prog, &img, &oracle, &input);
                interp_stats = stats;
                if let Verdict::Violation(detail) = verdict {
                    found[H_CODEGEN] = true;
                    out.harness_viol[H_CODEGEN] += 1;
                    out.violations.push(RawCe {
                        cfg,
                        aligns: aligns.to_vec(),
                        trip,
                        style: TripStyle::RuntimeUb,
                        probe,
                        harness: H_CODEGEN,
                        detail,
                    });
                }
            }
            if !found[H_FUSION] {
                if !take(spent, opts.budget) {
                    out.exhausted = true;
                    break 'sweep;
                }
                out.harness_runs[H_FUSION] += 1;
                if let Verdict::Violation(detail) =
                    harness_fusion_equiv(&prog, &img, &oracle, &input, interp_stats)
                {
                    found[H_FUSION] = true;
                    out.harness_viol[H_FUSION] += 1;
                    out.violations.push(RawCe {
                        cfg,
                        aligns: aligns.to_vec(),
                        trip,
                        style: TripStyle::RuntimeUb,
                        probe,
                        harness: H_FUSION,
                        detail,
                    });
                }
            }
            if !found[H_NATIVE] {
                if !take(spent, opts.budget) {
                    out.exhausted = true;
                    break 'sweep;
                }
                out.harness_runs[H_NATIVE] += 1;
                if let Verdict::Violation(detail) =
                    harness_native_equiv(&prog, &img, &oracle, &input, interp_stats)
                {
                    found[H_NATIVE] = true;
                    out.harness_viol[H_NATIVE] += 1;
                    out.violations.push(RawCe {
                        cfg,
                        aligns: aligns.to_vec(),
                        trip,
                        style: TripStyle::RuntimeUb,
                        probe,
                        harness: H_NATIVE,
                        detail,
                    });
                }
            }
            if pi == 0 && !found[H_CACHE] {
                if let Some(pre) = &pre {
                    if !take(spent, opts.budget) {
                        out.exhausted = true;
                        break 'sweep;
                    }
                    out.harness_runs[H_CACHE] += 1;
                    if let Verdict::Violation(detail) = harness_cache_coherence(
                        fingerprint,
                        pre,
                        &cache,
                        &img,
                        &oracle,
                        &input,
                        &kopts,
                    ) {
                        found[H_CACHE] = true;
                        out.harness_viol[H_CACHE] += 1;
                        out.violations.push(RawCe {
                            cfg,
                            aligns: aligns.to_vec(),
                            trip,
                            style: TripStyle::RuntimeUb,
                            probe,
                            harness: H_CACHE,
                            detail,
                        });
                    }
                }
            }
        }
    }

    }

    // Compile-time-known trip counts take the other bound formulas
    // (eqs 12/14): a small subset, each its own compilation. For
    // reduction and strided loops this pass is the entire proof, so it
    // also takes over the cache-coherence harness.
    if !out.exhausted {
        'known: for &trip in trips_known {
            if found[H_CODEGEN]
                && found[H_FUSION]
                && found[H_NATIVE]
                && (cache_proved_here || found[H_CACHE])
            {
                break;
            }
            let Some((kprog, kmutated)) = compile_variant(
                base,
                cfg,
                aligns,
                TripCount::Known(trip),
                opts.mutation,
                shape,
            ) else {
                continue;
            };
            out.compiled = true;
            out.mutated |= kmutated;
            if !lint_done {
                out.lint_deny = lint_deny_count(&kprog);
                lint_done = true;
            }
            let kpre = if cache_proved_here {
                None
            } else {
                PredecodedKernel::new(&kprog).ok()
            };
            let kfp = program_fingerprint(&kprog);
            let ksrc = kprog.source().clone();
            let input = RunInput {
                ub: trip,
                params: params.clone(),
            };
            for (pi, probe) in [Probe::Seeded(trip), Probe::LaneRamp].into_iter().enumerate() {
                let img = probe.build_image(&ksrc, shape, aligns);
                let mut oracle = img.clone();
                if run_scalar(&ksrc, &mut oracle, trip, &params).is_err() {
                    out.points_skipped += 1;
                    continue;
                }
                out.points += 1;
                let mut interp_stats = None;
                if !found[H_CODEGEN] {
                    if !take(spent, opts.budget) {
                        out.exhausted = true;
                        break 'known;
                    }
                    out.harness_runs[H_CODEGEN] += 1;
                    let (verdict, stats) = harness_codegen_equiv(&kprog, &img, &oracle, &input);
                    interp_stats = stats;
                    if let Verdict::Violation(detail) = verdict {
                        found[H_CODEGEN] = true;
                        out.harness_viol[H_CODEGEN] += 1;
                        out.violations.push(RawCe {
                            cfg,
                            aligns: aligns.to_vec(),
                            trip,
                            style: TripStyle::KnownTrip,
                            probe,
                            harness: H_CODEGEN,
                            detail,
                        });
                    }
                }
                if !found[H_FUSION] {
                    if !take(spent, opts.budget) {
                        out.exhausted = true;
                        break 'known;
                    }
                    out.harness_runs[H_FUSION] += 1;
                    if let Verdict::Violation(detail) =
                        harness_fusion_equiv(&kprog, &img, &oracle, &input, interp_stats)
                    {
                        found[H_FUSION] = true;
                        out.harness_viol[H_FUSION] += 1;
                        out.violations.push(RawCe {
                            cfg,
                            aligns: aligns.to_vec(),
                            trip,
                            style: TripStyle::KnownTrip,
                            probe,
                            harness: H_FUSION,
                            detail,
                        });
                    }
                }
                if !found[H_NATIVE] {
                    if !take(spent, opts.budget) {
                        out.exhausted = true;
                        break 'known;
                    }
                    out.harness_runs[H_NATIVE] += 1;
                    if let Verdict::Violation(detail) =
                        harness_native_equiv(&kprog, &img, &oracle, &input, interp_stats)
                    {
                        found[H_NATIVE] = true;
                        out.harness_viol[H_NATIVE] += 1;
                        out.violations.push(RawCe {
                            cfg,
                            aligns: aligns.to_vec(),
                            trip,
                            style: TripStyle::KnownTrip,
                            probe,
                            harness: H_NATIVE,
                            detail,
                        });
                    }
                }
                if pi == 0 && !found[H_CACHE] {
                    if let Some(kpre) = &kpre {
                        if !take(spent, opts.budget) {
                            out.exhausted = true;
                            break 'known;
                        }
                        out.harness_runs[H_CACHE] += 1;
                        if let Verdict::Violation(detail) = harness_cache_coherence(
                            kfp, kpre, &cache, &img, &oracle, &input, &kopts,
                        ) {
                            found[H_CACHE] = true;
                            out.harness_viol[H_CACHE] += 1;
                            out.violations.push(RawCe {
                                cfg,
                                aligns: aligns.to_vec(),
                                trip,
                                style: TripStyle::KnownTrip,
                                probe,
                                harness: H_CACHE,
                                detail,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Proves the loop over the full bounded domain and returns the
/// verdict. This is the entry point behind `simdize verify`.
pub fn prove_loop(name: &str, base: &LoopProgram, opts: &VerifyOptions) -> VerifyReport {
    let start = Instant::now();
    let shape = VectorShape::V16;
    let d = base.elem().size() as u32;
    let block = (shape.bytes() / d) as u64;
    let cands = realizable_offsets(shape, d);
    let narrays = base.arrays().len();
    let (vectors, capped) = alignment_vectors(narrays, &cands, opts.quick);
    let strided = is_strided(base);
    let reduction = base.stmts().iter().any(|s| s.is_reduction());
    // Strided loops take the §7 pack/scatter generator, which has no
    // policy/reuse/unroll or runtime-alignment knobs — one canonical
    // configuration covers them.
    let cfgs = if strided {
        vec![Config {
            policy: Policy::Zero,
            reuse: ReuseMode::None,
            unroll: false,
            mode: Mode::Declared,
        }]
    } else {
        configs(opts)
    };
    // Reductions and strided loops only compile with a known trip
    // count; the runtime-`ub` pass is empty and the known-trip pass
    // carries the whole proof.
    let trips_ub = if strided || reduction {
        Vec::new()
    } else {
        trips(base, opts.trip_bound, block, opts.quick)
    };
    let trips_known = known_trips(base, opts.trip_bound, block, opts.quick);

    let units: Vec<(Config, &Vec<u32>)> = cfgs
        .iter()
        .flat_map(|c| vectors.iter().map(move |v| (*c, v)))
        .collect();

    let spent = AtomicU64::new(0);
    let cursor = AtomicUsize::new(0);
    let threads = opts.threads.clamp(1, units.len().max(1));
    let mut outcomes: Vec<(usize, UnitOutcome)> = Vec::with_capacity(units.len());
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let units = &units;
            let spent = &spent;
            let cursor = &cursor;
            let trips_ub = &trips_ub;
            let trips_known = &trips_known;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= units.len() {
                        return mine;
                    }
                    let (cfg, aligns) = units[idx];
                    mine.push((
                        idx,
                        run_unit(
                            base, cfg, aligns, opts, shape, block, trips_ub, trips_known, spent,
                        ),
                    ));
                }
            }));
        }
        for h in handles {
            outcomes.extend(h.join().expect("verify worker panicked"));
        }
    });
    outcomes.sort_by_key(|(idx, _)| *idx);

    let mut report = VerifyReport {
        loop_name: name.to_string(),
        proved: false,
        quick: opts.quick,
        trip_bound: opts.trip_bound,
        trip_cap: trip_cap(base).min(opts.trip_bound),
        align_candidates: shape.bytes(),
        align_realizable: cands.len() as u32,
        streams: narrays as u32,
        align_vectors: vectors.len() as u64,
        align_capped: capped,
        configs_enumerated: cfgs.len() as u64,
        units_compiled: 0,
        units_skipped: 0,
        units_mutated: 0,
        points: 0,
        points_skipped: 0,
        runs: 0,
        budget: opts.budget,
        budget_exhausted: false,
        harnesses: HARNESS_NAMES
            .iter()
            .map(|&name| HarnessSummary {
                name,
                runs: 0,
                violations: 0,
            })
            .collect(),
        violations_total: 0,
        violations: Vec::new(),
        inconsistencies: Vec::new(),
        inconsistencies_total: 0,
        wall_ms: 0,
    };

    let mut raw_ces: Vec<RawCe> = Vec::new();
    for (_, u) in &outcomes {
        if u.compiled {
            report.units_compiled += 1;
        } else {
            report.units_skipped += 1;
        }
        if u.mutated {
            report.units_mutated += 1;
        }
        report.points += u.points;
        report.points_skipped += u.points_skipped;
        report.budget_exhausted |= u.exhausted;
        for h in 0..NH {
            report.harnesses[h].runs += u.harness_runs[h];
            report.harnesses[h].violations += u.harness_viol[h];
            report.runs += u.harness_runs[h];
        }
        report.violations_total += u.violations.len() as u64;

        // Lint cross-check: the abstract interpreter's deny verdict and
        // the prover's concrete verdict must agree on program-semantics
        // properties (cache coherence is invisible to lints).
        if u.compiled {
            let sem_viol = u.harness_viol[H_CODEGEN] + u.harness_viol[H_FUSION] > 0;
            let lint_deny = u.lint_deny > 0;
            if sem_viol != lint_deny {
                report.inconsistencies_total += 1;
                if report.inconsistencies.len() < 8 {
                    let cfg_desc = u
                        .violations
                        .first()
                        .map(|c| c.cfg.describe())
                        .unwrap_or_else(|| "passing unit".to_string());
                    report.inconsistencies.push(if lint_deny {
                        format!(
                            "{} deny-level lint finding(s) on a program the prover passed ({cfg_desc})",
                            u.lint_deny
                        )
                    } else {
                        format!(
                            "prover violation on a lint-clean program ({cfg_desc})"
                        )
                    });
                }
            }
        }
        raw_ces.extend(u.violations.iter().cloned());
    }

    // Shrink the first counterexample of each harness to its minimal
    // (alignment, trip, seed) triple with a replayable command line.
    for h in 0..NH {
        if let Some(raw) = raw_ces.iter().find(|c| c.harness == h) {
            report
                .violations
                .push(shrink::shrink_and_replay(base, opts, shape, raw.clone()));
        }
    }

    report.proved = report.violations_total == 0
        && !report.budget_exhausted
        && report.units_compiled > 0;
    report.wall_ms = start.elapsed().as_millis() as u64;
    report
}
