//! simdize-verify — bounded-equivalence prover for generated, fused
//! and cached kernels.
//!
//! This crate is the repository's answer to "how do we *know* the
//! vectorizer is right, not just lucky on the seeds we happened to
//! test": a bounded model-checking tier that proves, by exhaustive
//! enumeration, byte-equivalence to the scalar oracle over
//!
//! * every realizable byte alignment per stream (all 16 candidate
//!   offsets, filtered to the multiples of the element width, crossed
//!   across streams),
//! * every trip count up to a bound (default 64), in both the
//!   runtime-`ub` and compile-time-known codegen forms,
//! * all four shift policies × reuse × unroll configurations, in both
//!   declared- and runtime-alignment modes, and
//! * a small structured value domain (seeded fills, lane-index ramps,
//!   single-hot bytes, boundary sentinels).
//!
//! Four Kani-style named harnesses run through one shared enumeration
//! driver with a work budget and parallel workers:
//!
//! * [`prover::HARNESS_NAMES`]`[0]` — `harness_codegen_equiv`: the
//!   generated program, interpreted, matches the scalar oracle byte
//!   for byte (guard padding included).
//! * `harness_fusion_equiv`: the trace-fused engine matches the oracle
//!   *and* reports the interpreter's exact `RunStats`.
//! * `harness_cache_coherence`: a kernel-cache hit is byte-identical
//!   to a fresh bake for the same `(program, input, layout)` key.
//! * `harness_native_equiv`: the `std::arch` intrinsics backend,
//!   dispatched at the host's detected ISA level, matches the oracle's
//!   bytes and the interpreter's exact `RunStats` (its counterexamples
//!   replay as `simdize run --engine simd`).
//!
//! Counterexamples are shrunk to the minimal `(alignment, trip, seed)`
//! triple and printed as a replayable `simdize run` command line. The
//! prover also cross-checks the static-analysis tier: a deny-level
//! lint on a program the prover passed (or a prover violation on a
//! lint-clean program) is reported as an inconsistency.
//!
//! The crate is wired three ways: the `simdize verify` CLI subcommand,
//! a `verify` request in the server's `simdize-wire/v1` protocol, and
//! the seeded mutate-and-catch meta-test ([`MutationKind`]), which
//! injects a known-bad off-by-one into the generated code and asserts
//! the prover catches it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod mutate;
pub mod prover;
mod report;
mod shrink;

pub use domain::{Mode, Probe, TripStyle, VerifyOptions};
pub use mutate::{apply as apply_mutation, MutationKind};
pub use prover::{prove_loop, HARNESS_NAMES};
pub use report::{Counterexample, HarnessSummary, VerifyReport};

use simdize_ir::{parse_program, ParseProgramError};

/// Why [`prove_source`] could not even start the enumeration.
#[derive(Debug)]
pub enum ProveError {
    /// The loop source did not parse.
    Parse(ParseProgramError),
}

impl std::fmt::Display for ProveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProveError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for ProveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProveError::Parse(e) => Some(e),
        }
    }
}

/// Parses `source` and proves it under `opts`. The happy path behind
/// `simdize verify <loop>`.
pub fn prove_source(
    name: &str,
    source: &str,
    opts: &VerifyOptions,
) -> Result<VerifyReport, ProveError> {
    let program = parse_program(source).map_err(ProveError::Parse)?;
    Ok(prove_loop(name, &program, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = "arrays { a: i32[64] @ 0; b: i32[64] @ 4; c: i32[64] @ 8; }
                           for i in 0..40 { a[i+1] = b[i] + c[i+2]; }";

    #[test]
    fn quick_prove_passes_on_figure1() {
        let report = prove_source("figure1", FIGURE1, &VerifyOptions::quick()).unwrap();
        assert!(report.proved, "expected a proof, got:\n{}", report.render_text());
        assert_eq!(report.violations_total, 0);
        assert!(report.units_compiled > 0);
        assert!(report.runs > 0);
        assert!(!report.budget_exhausted);
        assert_eq!(report.inconsistencies_total, 0);
    }

    #[test]
    fn mutate_and_catch_finds_shrunk_counterexample() {
        let mut opts = VerifyOptions::quick();
        opts.mutation = Some(MutationKind::SpliceOffByOne);
        let report = prove_source("figure1", FIGURE1, &opts).unwrap();
        assert!(!report.proved);
        assert!(report.violations_total > 0, "mutation must be caught");
        assert!(report.units_mutated > 0);
        let ce = report
            .violations
            .first()
            .expect("at least one shrunk counterexample");
        assert!(ce.replay.contains("simdize run"), "replay: {}", ce.replay);
        assert!(ce.shrink_steps > 0);
    }

    #[test]
    fn strided_and_reduction_loops_prove_via_known_trips() {
        // Neither compiles with a runtime trip count: strided loops
        // take the §7 generator (one canonical configuration) and
        // reductions need the trip baked in. Both must still prove —
        // including the cache harness, which moves to the known-trip
        // pass when no runtime-`ub` compilation exists.
        let strided = "arrays { out: i32[64] @ 0; inter: i32[160] @ 0; }
                       for i in 0..60 { out[i] = inter[2*i] + inter[2*i+1]; }";
        let report = prove_source("strided", strided, &VerifyOptions::quick()).unwrap();
        assert!(report.proved, "{}", report.render_text());
        assert_eq!(report.configs_enumerated, 1);
        assert!(report.harnesses.iter().all(|h| h.runs > 0));

        let reduction = "arrays { acc: i32[4] @ 0; x: i32[64] @ 4; }
                         for i in 0..4 { acc[i] += x[i+1]; }";
        let report = prove_source("reduction", reduction, &VerifyOptions::quick()).unwrap();
        assert!(report.proved, "{}", report.render_text());
        assert!(report.harnesses.iter().all(|h| h.runs > 0));
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            prove_source("bad", "arrays {", &VerifyOptions::quick()),
            Err(ProveError::Parse(_))
        ));
    }
}
