//! The prover's verdict: aggregate counters, per-harness summaries,
//! shrunk counterexamples, and the text / `simdize-verify/v1` JSON
//! renderings.

use std::fmt::Write as _;

/// What one named harness did across the whole enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessSummary {
    /// The harness name (`harness_codegen_equiv`, ...).
    pub name: &'static str,
    /// Harness executions (each counts one unit of budget).
    pub runs: u64,
    /// Violated properties found.
    pub violations: u64,
}

/// One violated property, shrunk (when shrinking succeeded) to the
/// minimal `(alignment, trip, seed)` triple that still fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The harness that failed.
    pub harness: &'static str,
    /// Shift policy of the failing configuration.
    pub policy: String,
    /// Reuse scheme (`none`/`sp`/`pc`).
    pub reuse: String,
    /// Whether unroll-by-2 ran.
    pub unroll: bool,
    /// Declared or runtime alignments.
    pub mode: String,
    /// Per-stream byte offsets.
    pub aligns: Vec<u32>,
    /// The failing trip count.
    pub trip: u64,
    /// `runtime-ub` or `known-trip` compilation of the trip count.
    pub trip_style: String,
    /// The value probe (`seeded:3`, `lane-ramp`, ...).
    pub probe: String,
    /// What went wrong (first differing byte, stats divergence, fault).
    pub detail: String,
    /// Whether shrinking ran to completion on this counterexample.
    pub shrunk: bool,
    /// Re-executions the shrinker spent minimizing it.
    pub shrink_steps: u64,
    /// A replayable `simdize run` command line reproducing the
    /// configuration (exact for seeded probes on declared alignments).
    pub replay: String,
}

/// The full verdict of one `simdize verify` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The loop's display name.
    pub loop_name: String,
    /// Whether every enumerated property held *and* the enumeration
    /// completed within budget.
    pub proved: bool,
    /// Whether the quick (sampled) domain was used.
    pub quick: bool,
    /// The requested trip bound.
    pub trip_bound: u64,
    /// The effective bound after capping by array lengths.
    pub trip_cap: u64,
    /// Candidate byte offsets per stream (always `V` = 16).
    pub align_candidates: u32,
    /// Offsets realizable under natural element alignment (`V/d`).
    pub align_realizable: u32,
    /// Streams (arrays) crossed.
    pub streams: u32,
    /// Alignment vectors enumerated per configuration.
    pub align_vectors: u64,
    /// Whether the cross product was sampled rather than exhaustive.
    pub align_capped: bool,
    /// Compile configurations enumerated (policy × reuse × unroll ×
    /// mode).
    pub configs_enumerated: u64,
    /// `(config, alignment-vector)` units that compiled.
    pub units_compiled: u64,
    /// Units skipped because the policy does not apply (§4.4).
    pub units_skipped: u64,
    /// Units whose generated program received the requested mutation.
    pub units_mutated: u64,
    /// Distinct `(config, aligns, trip, probe)` points evaluated.
    pub points: u64,
    /// Points skipped because the scalar oracle itself faults there
    /// (out of the loop's domain).
    pub points_skipped: u64,
    /// Total harness executions (the budget currency).
    pub runs: u64,
    /// The run budget.
    pub budget: u64,
    /// Whether the enumeration stopped on budget exhaustion.
    pub budget_exhausted: bool,
    /// Per-harness totals.
    pub harnesses: Vec<HarnessSummary>,
    /// Total violated properties (counterexamples below are capped).
    pub violations_total: u64,
    /// Shrunk counterexamples, at most one per `(unit, harness)`.
    pub violations: Vec<Counterexample>,
    /// Lint-vs-prover inconsistencies: a deny-level lint on a program
    /// the prover passed, or a prover violation on a lint-clean
    /// program.
    pub inconsistencies: Vec<String>,
    /// Total inconsistencies (the list above is capped).
    pub inconsistencies_total: u64,
    /// Wall-clock time of the enumeration in milliseconds (zeroed in
    /// deterministic contexts such as the wire protocol).
    pub wall_ms: u64,
}

impl VerifyReport {
    /// The JSON schema identifier.
    pub const SCHEMA: &'static str = "simdize-verify/v1";

    /// Human-readable multi-line rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let verdict = if self.proved {
            "PROVED"
        } else if self.violations_total > 0 {
            "VIOLATED"
        } else {
            "INCOMPLETE"
        };
        let _ = writeln!(
            out,
            "{verdict}: {} — {} alignments/stream ({} realizable) x {} streams, trips 1..={}, {} configs",
            self.loop_name,
            self.align_candidates,
            self.align_realizable,
            self.streams,
            self.trip_cap,
            self.configs_enumerated,
        );
        let _ = writeln!(
            out,
            "  units: {} compiled, {} skipped (inapplicable policy), {} mutated; {} alignment vectors{}",
            self.units_compiled,
            self.units_skipped,
            self.units_mutated,
            self.align_vectors,
            if self.align_capped { " (sampled)" } else { "" },
        );
        let _ = writeln!(
            out,
            "  runs: {} of budget {} across {} points ({} skipped){}",
            self.runs,
            self.budget,
            self.points,
            self.points_skipped,
            if self.budget_exhausted {
                " — BUDGET EXHAUSTED, proof incomplete"
            } else {
                ""
            },
        );
        for h in &self.harnesses {
            let _ = writeln!(
                out,
                "  {}: {} runs, {} violation(s)",
                h.name, h.runs, h.violations
            );
        }
        for (k, ce) in self.violations.iter().enumerate() {
            let _ = writeln!(
                out,
                "  counterexample {}: {} policy={} reuse={} unroll={} mode={} aligns={:?} trip={} ({}) probe={}",
                k + 1,
                ce.harness,
                ce.policy,
                ce.reuse,
                if ce.unroll { "on" } else { "off" },
                ce.mode,
                ce.aligns,
                ce.trip,
                ce.trip_style,
                ce.probe,
            );
            let _ = writeln!(out, "    {}", ce.detail);
            let _ = writeln!(
                out,
                "    {}via: {}",
                if ce.shrunk { "shrunk; replay " } else { "replay " },
                ce.replay
            );
        }
        if self.violations_total > self.violations.len() as u64 {
            let _ = writeln!(
                out,
                "  ({} further violation(s) not shown)",
                self.violations_total - self.violations.len() as u64
            );
        }
        for inc in &self.inconsistencies {
            let _ = writeln!(out, "  lint/prover inconsistency: {inc}");
        }
        if self.inconsistencies_total > self.inconsistencies.len() as u64 {
            let _ = writeln!(
                out,
                "  ({} further inconsistency(ies) not shown)",
                self.inconsistencies_total - self.inconsistencies.len() as u64
            );
        }
        if self.wall_ms > 0 {
            let _ = writeln!(out, "  wall time: {} ms", self.wall_ms);
        }
        out
    }

    /// The `simdize-verify/v1` JSON rendering: one object, stable key
    /// order, no whitespace.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"loop\":\"{}\",\"proved\":{},\"quick\":{},\
             \"trip_bound\":{},\"trip_cap\":{},\
             \"alignments\":{{\"candidates\":{},\"realizable\":{},\"streams\":{},\"vectors\":{},\"capped\":{}}},\
             \"units\":{{\"configs\":{},\"compiled\":{},\"skipped\":{},\"mutated\":{}}},\
             \"runs\":{{\"points\":{},\"points_skipped\":{},\"executed\":{},\"budget\":{},\"budget_exhausted\":{}}},\
             \"harnesses\":[",
            Self::SCHEMA,
            esc(&self.loop_name),
            self.proved,
            self.quick,
            self.trip_bound,
            self.trip_cap,
            self.align_candidates,
            self.align_realizable,
            self.streams,
            self.align_vectors,
            self.align_capped,
            self.configs_enumerated,
            self.units_compiled,
            self.units_skipped,
            self.units_mutated,
            self.points,
            self.points_skipped,
            self.runs,
            self.budget,
            self.budget_exhausted,
        );
        for (k, h) in self.harnesses.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"runs\":{},\"violations\":{}}}",
                h.name, h.runs, h.violations
            );
        }
        let _ = write!(out, "],\"violations_total\":{},\"violations\":[", self.violations_total);
        for (k, ce) in self.violations.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let aligns: Vec<String> = ce.aligns.iter().map(|a| a.to_string()).collect();
            let _ = write!(
                out,
                "{{\"harness\":\"{}\",\"policy\":\"{}\",\"reuse\":\"{}\",\"unroll\":{},\"mode\":\"{}\",\
                 \"aligns\":[{}],\"trip\":{},\"trip_style\":\"{}\",\"probe\":\"{}\",\
                 \"detail\":\"{}\",\"shrunk\":{},\"shrink_steps\":{},\"replay\":\"{}\"}}",
                ce.harness,
                esc(&ce.policy),
                esc(&ce.reuse),
                ce.unroll,
                esc(&ce.mode),
                aligns.join(","),
                ce.trip,
                esc(&ce.trip_style),
                esc(&ce.probe),
                esc(&ce.detail),
                ce.shrunk,
                ce.shrink_steps,
                esc(&ce.replay),
            );
        }
        let _ = write!(
            out,
            "],\"inconsistencies_total\":{},\"inconsistencies\":[",
            self.inconsistencies_total
        );
        for (k, inc) in self.inconsistencies.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", esc(inc));
        }
        let _ = write!(out, "],\"wall_ms\":{}}}", self.wall_ms);
        out
    }
}

/// Minimal JSON string escaping (the report embeds loop sources and
/// shell replay lines).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_schema_and_stable_shape() {
        let report = VerifyReport {
            loop_name: "figure1".to_string(),
            proved: true,
            quick: false,
            trip_bound: 64,
            trip_cap: 62,
            align_candidates: 16,
            align_realizable: 4,
            streams: 3,
            align_vectors: 64,
            align_capped: false,
            configs_enumerated: 30,
            units_compiled: 1920,
            units_skipped: 0,
            units_mutated: 0,
            points: 100,
            points_skipped: 0,
            runs: 250,
            budget: 1000,
            budget_exhausted: false,
            harnesses: vec![HarnessSummary {
                name: "harness_codegen_equiv",
                runs: 100,
                violations: 0,
            }],
            violations_total: 0,
            violations: Vec::new(),
            inconsistencies: Vec::new(),
            inconsistencies_total: 0,
            wall_ms: 0,
        };
        let json = report.render_json();
        assert!(json.starts_with("{\"schema\":\"simdize-verify/v1\""));
        assert!(json.contains("\"proved\":true"));
        assert!(json.contains("\"harnesses\":[{\"name\":\"harness_codegen_equiv\""));
        assert!(json.ends_with("\"wall_ms\":0}"));
        let text = report.render_text();
        assert!(text.starts_with("PROVED: figure1"));
    }
}
