//! Counterexample shrinking: reduce a raw violation to the minimal
//! `(alignment, trip, seed)` triple that still fails, and render it as
//! a replayable `simdize run` command line.
//!
//! The shrinker is greedy and only ever accepts a candidate after
//! re-compiling the variant and re-running the single failing harness —
//! so every intermediate it keeps is itself a true counterexample, and
//! the final triple is guaranteed to still violate the property.

use crate::domain::{params_for, rebuild, reuse_name, Config, Mode, Probe, TripStyle, VerifyOptions};
use crate::prover::{
    compile_variant, harness_cache_coherence, harness_codegen_equiv, harness_fusion_equiv,
    harness_native_equiv, RawCe, Verdict, H_CACHE, H_CODEGEN, H_NATIVE, HARNESS_NAMES, NH,
};
use crate::report::Counterexample;
use simdize_engine::{program_fingerprint, KernelCache, KernelOptions, PredecodedKernel};
use simdize_ir::{LoopProgram, TripCount, VectorShape};
use simdize_vm::{run_scalar, RunInput};
use std::fmt::Write as _;

/// Re-runs the single failing harness at one candidate point. `true`
/// means the property is still violated there.
#[allow(clippy::too_many_arguments)]
fn fails(
    base: &LoopProgram,
    opts: &VerifyOptions,
    shape: VectorShape,
    cfg: Config,
    aligns: &[u32],
    trip: u64,
    style: TripStyle,
    probe: Probe,
    harness: usize,
    steps: &mut u64,
) -> bool {
    *steps += 1;
    let tripc = match style {
        TripStyle::RuntimeUb => TripCount::Runtime,
        TripStyle::KnownTrip => TripCount::Known(trip),
    };
    let Some((prog, _)) = compile_variant(base, cfg, aligns, tripc, opts.mutation, shape) else {
        return false;
    };
    let src = prog.source().clone();
    let params = params_for(base);
    let img = probe.build_image(&src, shape, aligns);
    let mut oracle = img.clone();
    if run_scalar(&src, &mut oracle, trip, &params).is_err() {
        return false;
    }
    let input = RunInput { ub: trip, params };
    match harness {
        H_CODEGEN => matches!(
            harness_codegen_equiv(&prog, &img, &oracle, &input).0,
            Verdict::Violation(_)
        ),
        H_CACHE => {
            let Ok(pre) = PredecodedKernel::new(&prog) else {
                return false;
            };
            let cache = KernelCache::new(1, 4);
            let kopts = KernelOptions::new().disassembly(false);
            matches!(
                harness_cache_coherence(
                    program_fingerprint(&prog),
                    &pre,
                    &cache,
                    &img,
                    &oracle,
                    &input,
                    &kopts,
                ),
                Verdict::Violation(_)
            )
        }
        H_NATIVE => {
            // Like fusion: the interpreter runs first so the RunStats
            // cross check still applies during shrinking.
            let (_, stats) = harness_codegen_equiv(&prog, &img, &oracle, &input);
            matches!(
                harness_native_equiv(&prog, &img, &oracle, &input, stats),
                Verdict::Violation(_)
            )
        }
        _ => {
            // Fusion: run the interpreter first so the RunStats cross
            // check — one of the properties this harness proves — still
            // applies during shrinking.
            let (_, stats) = harness_codegen_equiv(&prog, &img, &oracle, &input);
            matches!(
                harness_fusion_equiv(&prog, &img, &oracle, &input, stats),
                Verdict::Violation(_)
            )
        }
    }
}

/// Shrinks `raw` and renders the replayable counterexample.
pub(crate) fn shrink_and_replay(
    base: &LoopProgram,
    opts: &VerifyOptions,
    shape: VectorShape,
    raw: RawCe,
) -> Counterexample {
    let cfg = raw.cfg;
    let mut steps = 0u64;
    let mut trip = raw.trip;
    let mut aligns = raw.aligns.clone();
    let mut probe = raw.probe;
    let budget_ok = |steps: u64| steps < 512;

    // 1. Minimal failing trip count.
    for t in 1..trip {
        if !budget_ok(steps) {
            break;
        }
        if fails(
            base, opts, shape, cfg, &aligns, t, raw.style, probe, raw.harness, &mut steps,
        ) {
            trip = t;
            break;
        }
    }
    // 2. Zero out per-stream offsets greedily (smaller alignments are
    // easier to reason about in the replay).
    for s in 0..aligns.len() {
        if aligns[s] == 0 || !budget_ok(steps) {
            continue;
        }
        let mut cand = aligns.clone();
        cand[s] = 0;
        if fails(
            base, opts, shape, cfg, &cand, trip, raw.style, probe, raw.harness, &mut steps,
        ) {
            aligns = cand;
        }
    }
    // 3. Canonicalize the probe to a small seed so the CLI replay is
    // exact (`simdize run --seed`).
    if !matches!(probe, Probe::Seeded(s) if s < 8) && budget_ok(steps) {
        for s in 0..8u64 {
            if fails(
                base,
                opts,
                shape,
                cfg,
                &aligns,
                trip,
                raw.style,
                Probe::Seeded(s),
                raw.harness,
                &mut steps,
            ) {
                probe = Probe::Seeded(s);
                break;
            }
        }
    }
    // Confirmation replay: the minimized triple must itself reproduce
    // the violation (also guarantees every counterexample was
    // re-executed at least once after minimization).
    let shrunk = fails(
        base, opts, shape, cfg, &aligns, trip, raw.style, probe, raw.harness, &mut steps,
    );

    // The replay declares the shrunk alignments, so a runtime-mode
    // counterexample is only exact if the declared compilation fails at
    // the same point.
    let exact_mode = cfg.mode == Mode::Declared
        || fails(
            base,
            opts,
            shape,
            Config {
                mode: Mode::Declared,
                ..cfg
            },
            &aligns,
            trip,
            raw.style,
            probe,
            raw.harness,
            &mut steps,
        );

    let tripc = match raw.style {
        TripStyle::RuntimeUb => TripCount::Runtime,
        TripStyle::KnownTrip => TripCount::Known(trip),
    };
    let src_mode = if exact_mode { Mode::Declared } else { cfg.mode };
    let src = rebuild(base, &aligns, src_mode, tripc)
        .to_source()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ");

    let mut cmd = format!("echo '{src}' | simdize run -");
    let _ = write!(cmd, " --policy {}", cfg.policy.name());
    let _ = write!(cmd, " --reuse {}", reuse_name(cfg.reuse));
    if !cfg.unroll {
        cmd.push_str(" --no-unroll");
    }
    if raw.style == TripStyle::RuntimeUb {
        let _ = write!(cmd, " --ub {trip}");
    }
    for p in params_for(base) {
        let _ = write!(cmd, " --param {p}");
    }
    if let Probe::Seeded(s) = probe {
        let _ = write!(cmd, " --seed {s}");
    }
    // Replay through the engine the harness actually exercised: the
    // interpreter for codegen, the intrinsics backend for native, the
    // fused engine otherwise.
    match raw.harness {
        H_CODEGEN => {}
        H_NATIVE => cmd.push_str(" --engine simd"),
        _ => cmd.push_str(" --engine native"),
    }
    if let Some(kind) = opts.mutation {
        let _ = write!(cmd, "  # with --mutate {} injected", kind.name());
    }
    if !matches!(probe, Probe::Seeded(_)) {
        let _ = write!(
            cmd,
            "  # probe {} has no --seed equivalent; rerun simdize verify",
            probe.label()
        );
    }
    if !exact_mode {
        cmd.push_str("  # runtime-alignment compilation; rerun simdize verify to reproduce");
    }

    Counterexample {
        harness: HARNESS_NAMES[raw.harness.min(NH - 1)],
        policy: cfg.policy.name().to_string(),
        reuse: reuse_name(cfg.reuse).to_string(),
        unroll: cfg.unroll,
        mode: cfg.mode.name().to_string(),
        aligns,
        trip,
        trip_style: raw.style.name().to_string(),
        probe: probe.label(),
        detail: raw.detail,
        shrunk,
        shrink_steps: steps,
        replay: cmd,
    }
}
