//! The bounded enumeration domain: prover options, compile
//! configurations, alignment vectors, trip counts and value probes.
//!
//! Everything the prover varies lives here, so the domain a proof
//! covers can be read off one module: compile configuration (policy ×
//! reuse × unroll × declared-vs-runtime alignment), per-stream byte
//! alignment, trip count (with both the runtime-`ub` and the
//! compile-time-known codegen forms), and initial memory contents.

use crate::mutate::MutationKind;
use simdize_codegen::ReuseMode;
use simdize_ir::{
    AlignKind, ArrayDecl, ArrayId, LoopProgram, TripCount, Value, VectorShape,
};
use simdize_reorg::Policy;
use simdize_vm::MemoryImage;

/// The fill perturbation [`MemoryImage::with_seed`] applies before
/// calling `fill_random`, duplicated here so runtime-alignment probes
/// fill identically to the seeded images the `simdize run --seed`
/// replay path builds. A unit test asserts the two stay in sync.
pub(crate) const FILL_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fixed parameter values supplied to loops that declare `params`.
/// Structured like the value probes: small, signed, and unequal, so a
/// parameter routed to the wrong lane changes bytes.
pub(crate) const PARAM_PROBE: [i64; 4] = [3, -2, 7, 11];

/// Configuration for the bounded-equivalence prover.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Every trip count `1..=trip_bound` is proved (further capped by
    /// the loop's array lengths). The default 64 covers the
    /// prologue-only, steady-state and epilogue-only regimes for every
    /// element width.
    pub trip_bound: u64,
    /// Maximum number of harness executions before the prover stops
    /// and reports the proof as incomplete.
    pub budget: u64,
    /// Worker threads for the enumeration sweep.
    pub threads: usize,
    /// Shrink the domain to a smoke-sized sample: diagonal alignment
    /// vectors, boundary trip counts, seeded + lane-ramp probes only.
    pub quick: bool,
    /// The shift policies to prove (default: all four).
    pub policies: Vec<Policy>,
    /// Inject a known-bad mutation into every generated program before
    /// proving — the prover must then *fail*. Used by the
    /// mutate-and-catch meta-test and `simdize verify --mutate`.
    pub mutation: Option<MutationKind>,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            trip_bound: 64,
            budget: 4_000_000,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            quick: false,
            policies: Policy::ALL.to_vec(),
            mutation: None,
        }
    }
}

impl VerifyOptions {
    /// The full-domain defaults.
    pub fn new() -> VerifyOptions {
        VerifyOptions::default()
    }

    /// The smoke-sized preset behind `--quick`: sampled alignments,
    /// boundary trips, two probes, a small budget.
    pub fn quick() -> VerifyOptions {
        VerifyOptions {
            trip_bound: 16,
            budget: 200_000,
            quick: true,
            ..VerifyOptions::default()
        }
    }
}

/// How enumerated alignments reach the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Alignments are declared `Known` in the rebuilt loop, so every
    /// policy may exploit them (compile-time shift amounts, eqs 12/14).
    Declared,
    /// Alignments are declared `Runtime`; the compiler sees nothing and
    /// must emit `addr & (V-1)` expressions (§3.3, zero policy only).
    /// The memory image still places each array at the enumerated
    /// offset.
    Runtime,
}

impl Mode {
    /// Lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Declared => "declared",
            Mode::Runtime => "runtime",
        }
    }
}

/// Whether the trip count was compiled as a runtime `ub` or baked into
/// the loop as a compile-time constant — the two take different bound
/// formulas (eqs 13/15 vs 12/14), so the prover exercises both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripStyle {
    /// `for i in 0..ub`, trip supplied at run time.
    RuntimeUb,
    /// `for i in 0..N`, trip baked at compile time.
    KnownTrip,
}

impl TripStyle {
    /// Kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TripStyle::RuntimeUb => "runtime-ub",
            TripStyle::KnownTrip => "known-trip",
        }
    }
}

/// One compile configuration of the enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Shift-placement policy.
    pub policy: Policy,
    /// Reuse scheme.
    pub reuse: ReuseMode,
    /// Whether the copy-removing unroll-by-2 runs.
    pub unroll: bool,
    /// Declared or runtime alignments.
    pub mode: Mode,
}

impl Config {
    /// `policy=zero reuse=sp unroll=on mode=declared` — used in
    /// counterexamples and inconsistency reports.
    pub fn describe(&self) -> String {
        format!(
            "policy={} reuse={} unroll={} mode={}",
            self.policy.name(),
            reuse_name(self.reuse),
            if self.unroll { "on" } else { "off" },
            self.mode.name()
        )
    }
}

/// The reuse mode's CLI suffix name.
pub(crate) fn reuse_name(reuse: ReuseMode) -> &'static str {
    match reuse {
        ReuseMode::None => "none",
        ReuseMode::SoftwarePipeline => "sp",
        ReuseMode::PredictiveCommoning => "pc",
    }
}

/// Every compile configuration the options select. Runtime-alignment
/// mode only pairs with the zero policy (§4.4 — the others need
/// compile-time alignments and are counted as skipped, not silently
/// dropped, when enumerated in declared mode fails).
pub(crate) fn configs(opts: &VerifyOptions) -> Vec<Config> {
    let combos: &[(ReuseMode, bool)] = if opts.quick {
        &[(ReuseMode::SoftwarePipeline, true)]
    } else {
        &[
            (ReuseMode::None, true),
            (ReuseMode::None, false),
            (ReuseMode::SoftwarePipeline, true),
            (ReuseMode::SoftwarePipeline, false),
            (ReuseMode::PredictiveCommoning, true),
            (ReuseMode::PredictiveCommoning, false),
        ]
    };
    let mut out = Vec::new();
    for &policy in &opts.policies {
        for &(reuse, unroll) in combos {
            out.push(Config {
                policy,
                reuse,
                unroll,
                mode: Mode::Declared,
            });
        }
    }
    if opts.policies.contains(&Policy::Zero) {
        for &(reuse, unroll) in combos {
            out.push(Config {
                policy: Policy::Zero,
                reuse,
                unroll,
                mode: Mode::Runtime,
            });
        }
    }
    out
}

/// The byte offsets a stream of element width `d` can realize while
/// staying naturally aligned: the multiples of `d` below `V`. All 16
/// candidate offsets are realizable exactly when `d == 1`.
pub(crate) fn realizable_offsets(shape: VectorShape, d: u32) -> Vec<u32> {
    (0..shape.bytes()).filter(|o| o % d == 0).collect()
}

/// Alignment vectors to cross over the loop's streams. Full mode takes
/// the complete cartesian product (capped at 4096 vectors — beyond
/// that, diagonals plus every single-stream perturbation); quick mode
/// takes the diagonals plus one staggered vector.
///
/// Returns the vectors and whether the product was capped.
pub(crate) fn alignment_vectors(
    narrays: usize,
    cands: &[u32],
    quick: bool,
) -> (Vec<Vec<u32>>, bool) {
    if narrays == 0 || cands.is_empty() {
        return (vec![Vec::new()], false);
    }
    if quick {
        let mut out: Vec<Vec<u32>> = cands.iter().map(|&c| vec![c; narrays]).collect();
        let staggered: Vec<u32> = (0..narrays).map(|i| cands[i % cands.len()]).collect();
        if !out.contains(&staggered) {
            out.push(staggered);
        }
        return (out, true);
    }
    let total = cands.len().checked_pow(narrays as u32).unwrap_or(usize::MAX);
    if total <= 4096 {
        let mut out = Vec::with_capacity(total);
        for mut c in 0..total {
            let mut v = Vec::with_capacity(narrays);
            for _ in 0..narrays {
                v.push(cands[c % cands.len()]);
                c /= cands.len();
            }
            out.push(v);
        }
        return (out, false);
    }
    // Too many streams for the full cross: diagonals + every
    // single-stream perturbation off the zero vector.
    let mut out: Vec<Vec<u32>> = cands.iter().map(|&c| vec![c; narrays]).collect();
    for s in 0..narrays {
        for &c in cands {
            let mut v = vec![0u32; narrays];
            v[s] = c;
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    (out, true)
}

/// The largest trip count every reference of the loop stays in bounds
/// for, so the enumeration never asks the scalar oracle to fault.
pub(crate) fn trip_cap(base: &LoopProgram) -> u64 {
    let mut cap = u64::MAX;
    for r in base.all_refs() {
        let len = base.array(r.array).len() as i64;
        let stride = (r.stride as i64).max(1);
        if r.offset >= len {
            return 0;
        }
        if r.offset >= 0 {
            cap = cap.min(((len - 1 - r.offset) / stride + 1).max(0) as u64);
        }
    }
    cap
}

/// The trip counts to prove, already capped by [`trip_cap`]. Full mode
/// is exhaustive up to the bound; quick mode keeps the regime
/// boundaries (prologue-only, first steady iteration, `ub > 3B` guard
/// edge, unroll parity) plus the bound itself.
pub(crate) fn trips(base: &LoopProgram, bound: u64, block: u64, quick: bool) -> Vec<u64> {
    let cap = trip_cap(base).min(bound);
    if cap == 0 {
        return Vec::new();
    }
    if !quick {
        return (1..=cap).collect();
    }
    let b = block;
    let mut out: Vec<u64> = (1..=(b + 2).min(cap)).collect();
    for t in [
        2 * b,
        3 * b - 1,
        3 * b,
        3 * b + 1,
        3 * b + 2,
        4 * b,
        4 * b + 1,
        cap,
    ] {
        if t >= 1 && t <= cap {
            out.push(t);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The subset of trips also compiled with a *known* trip count (the
/// compile-time bound formulas, eqs 12/14). Small, since each needs its
/// own compilation.
pub(crate) fn known_trips(base: &LoopProgram, bound: u64, block: u64, quick: bool) -> Vec<u64> {
    let cap = trip_cap(base).min(bound);
    let b = block;
    let all: &[u64] = if quick {
        &[1, b, 3 * b + 2]
    } else {
        &[1, b - 1, b, b + 1, 2 * b + 1, 3 * b, 3 * b + 2, bound]
    };
    let mut out: Vec<u64> = all.iter().copied().filter(|&t| t >= 1 && t <= cap).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The fixed parameter vector for the loop's declared params.
pub(crate) fn params_for(base: &LoopProgram) -> Vec<i64> {
    (0..base.params().len())
        .map(|i| PARAM_PROBE[i % PARAM_PROBE.len()])
        .collect()
}

/// Rebuilds the loop with the enumerated alignments (declared `Known`
/// or erased to `Runtime` per `mode`) and the given trip count.
pub(crate) fn rebuild(
    base: &LoopProgram,
    aligns: &[u32],
    mode: Mode,
    trip: TripCount,
) -> LoopProgram {
    let arrays: Vec<ArrayDecl> = base
        .arrays()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let align = match mode {
                Mode::Declared => AlignKind::Known(aligns[i]),
                Mode::Runtime => AlignKind::Runtime,
            };
            ArrayDecl::new(a.name(), a.elem(), a.len(), align)
        })
        .collect();
    LoopProgram::new(
        base.elem(),
        arrays,
        base.params().to_vec(),
        trip,
        base.stmts().to_vec(),
    )
    .expect("rebuilt loop re-validates: only alignments and trip changed")
}

/// A structured initial-memory pattern, chosen so any byte permutation
/// or clobber in the generated code changes at least one output byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Pseudo-random contents, filled exactly like
    /// [`MemoryImage::with_seed`] so `simdize run --seed` replays it.
    Seeded(u64),
    /// Every element holds a value derived from its lane index and its
    /// array — any lane swap, off-by-one shift or cross-stream mixup is
    /// visible in the bytes.
    LaneRamp,
    /// All zeros except one hot element per array — isolates exactly
    /// which source element each output byte came from.
    SingleHot(u64),
    /// Alternating minimum/maximum element values — catches sign
    /// extension and truncation mistakes at the type boundaries.
    Sentinel,
}

impl Probe {
    /// Kebab-case label for reports (`seeded:7`, `lane-ramp`, ...).
    pub fn label(&self) -> String {
        match self {
            Probe::Seeded(s) => format!("seeded:{s}"),
            Probe::LaneRamp => "lane-ramp".to_string(),
            Probe::SingleHot(k) => format!("single-hot:{k}"),
            Probe::Sentinel => "sentinel".to_string(),
        }
    }

    /// Builds the memory image for `src` with every array placed at its
    /// enumerated byte offset and contents filled per the probe.
    pub(crate) fn build_image(
        &self,
        src: &LoopProgram,
        shape: VectorShape,
        aligns: &[u32],
    ) -> MemoryImage {
        let mut img = MemoryImage::with_offsets(src, shape, aligns);
        let elem = src.elem();
        match *self {
            Probe::Seeded(s) => img.fill_random(s ^ FILL_SALT),
            Probe::LaneRamp => {
                for (ai, a) in src.arrays().iter().enumerate() {
                    for idx in 0..a.len() {
                        let v = (idx as i64 + 1).wrapping_add(ai as i64 * 71);
                        img.set(ArrayId::from_index(ai), idx, Value::from_i64(elem, v))
                            .expect("ramp fill stays in bounds");
                    }
                }
            }
            Probe::SingleHot(k) => {
                for (ai, a) in src.arrays().iter().enumerate() {
                    let hot = (k + ai as u64) % a.len().max(1);
                    img.set(ArrayId::from_index(ai), hot, Value::from_i64(elem, 0x5D))
                        .expect("hot fill stays in bounds");
                }
            }
            Probe::Sentinel => {
                let bits = elem.bits();
                let (lo, hi) = if elem.is_signed() {
                    (
                        (-(1i128 << (bits - 1))) as i64,
                        ((1i128 << (bits - 1)) - 1) as i64,
                    )
                } else {
                    let max = if bits >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << bits) - 1
                    };
                    (0i64, max as i64)
                };
                for (ai, a) in src.arrays().iter().enumerate() {
                    for idx in 0..a.len() {
                        let v = if (idx + ai as u64).is_multiple_of(2) { hi } else { lo };
                        img.set(ArrayId::from_index(ai), idx, Value::from_i64(elem, v))
                            .expect("sentinel fill stays in bounds");
                    }
                }
            }
        }
        img
    }
}

/// The probes run at one `(config, aligns, trip)` point. Seeded and
/// lane-ramp run everywhere; the boundary probes join on trip counts
/// near a regime edge, where splice windows are widest.
pub(crate) fn probes(trip: u64, block: u64, bound: u64, quick: bool, salt: u64) -> Vec<Probe> {
    let mut out = vec![Probe::Seeded(salt), Probe::LaneRamp];
    if quick {
        return out;
    }
    let b = block;
    let boundary = trip <= 3 * b + 2 || trip + 2 >= bound || trip % b <= 1;
    if boundary {
        out.push(Probe::SingleHot(trip));
        out.push(Probe::Sentinel);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::parse_program;

    const SRC: &str = "arrays { a: i32[64] @ 0; b: i32[64] @ 4; c: i32[64] @ 8; }
                       for i in 0..40 { a[i+1] = b[i] + c[i+2]; }";

    #[test]
    fn seeded_probe_matches_with_seed_images() {
        // The prover promises its `seeded:<s>` probe equals the image
        // `simdize run --seed <s>` builds for an all-known loop; this
        // pins the FILL_SALT duplicate against MemoryImage::with_seed.
        let p = parse_program(SRC).unwrap();
        let shape = VectorShape::V16;
        let probe = Probe::Seeded(42).build_image(&p, shape, &[0, 4, 8]);
        let reference = MemoryImage::with_seed(&p, shape, 42);
        assert_eq!(probe.first_difference(&reference), None);
    }

    #[test]
    fn realizable_offsets_scale_with_width() {
        assert_eq!(realizable_offsets(VectorShape::V16, 4), vec![0, 4, 8, 12]);
        assert_eq!(realizable_offsets(VectorShape::V16, 1).len(), 16);
    }

    #[test]
    fn alignment_vectors_cross_and_cap() {
        let cands = [0u32, 4, 8, 12];
        let (full, capped) = alignment_vectors(3, &cands, false);
        assert_eq!(full.len(), 64);
        assert!(!capped);
        let (quick, capped) = alignment_vectors(3, &cands, true);
        assert!(quick.len() <= cands.len() + 1);
        assert!(capped);
        let (wide, capped) = alignment_vectors(8, &cands, false);
        assert!(capped);
        assert!(wide.len() < 4096);
    }

    #[test]
    fn trip_cap_respects_array_bounds() {
        let p = parse_program(SRC).unwrap();
        // c[i+2] is the tightest reference: i+2 <= 63 → 62 trips.
        assert_eq!(trip_cap(&p), 62);
        assert_eq!(trips(&p, 64, 4, false).len(), 62);
        let quick = trips(&p, 64, 4, true);
        assert!(quick.contains(&1) && quick.contains(&13) && quick.contains(&62));
    }

    #[test]
    fn rebuild_overrides_alignment_and_trip() {
        let p = parse_program(SRC).unwrap();
        let r = rebuild(&p, &[4, 8, 12], Mode::Declared, TripCount::Runtime);
        assert_eq!(r.arrays()[0].align(), AlignKind::Known(4));
        assert_eq!(r.trip(), TripCount::Runtime);
        let rt = rebuild(&p, &[4, 8, 12], Mode::Runtime, TripCount::Known(7));
        assert_eq!(rt.arrays()[2].align(), AlignKind::Runtime);
        assert_eq!(rt.trip(), TripCount::Known(7));
    }

    #[test]
    fn configs_pair_runtime_mode_with_zero_only() {
        let opts = VerifyOptions::default();
        let cfgs = configs(&opts);
        assert!(cfgs
            .iter()
            .all(|c| c.mode == Mode::Declared || c.policy == Policy::Zero));
        assert_eq!(cfgs.len(), 5 * 6 + 6);
    }
}
