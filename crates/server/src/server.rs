//! The long-running `simdize serve` server.
//!
//! Architecture (std::net + threads only — the workspace is offline,
//! no async runtime):
//!
//! * one **accept loop** on a nonblocking listener, polled every few
//!   milliseconds so a shutdown request or SIGINT is observed promptly;
//! * one **connection thread** per client, reading JSONL requests with
//!   a short read timeout (so idle connections also observe shutdown),
//!   answering control-plane requests (`ping`/`stats`/`shutdown`)
//!   inline and handing pipeline requests to the worker pool;
//! * a fixed **worker pool** popping jobs from a bounded
//!   `Mutex<VecDeque>` + `Condvar` queue. When the queue is full the
//!   connection thread answers with the `busy` envelope immediately —
//!   explicit backpressure instead of unbounded buffering;
//! * one process-wide sharded [`KernelCache`]: every `run` and `sweep`
//!   request executes through [`run_sweep_shared`], so a kernel baked
//!   for one request is a cache hit for every later request (and every
//!   worker) with the same (program, input, layout).
//!
//! Per-request latency lands in [`simdize_telemetry::Histogram`]s (one
//! per verb plus an aggregate), which is what `stats` reports p50/p95
//! and requests/sec from.
//!
//! Every request gets a deterministic [`TraceId`] (`c<conn>-<seq>`:
//! the accepting connection's number plus a process-scoped request
//! counter), echoed in its response envelope. Worker-pool requests run
//! under a request scope ([`telemetry::begin_request`]) so their spans
//! and pipeline attributes are collected per request; every request —
//! including control verbs, parse errors and `busy` rejections — is
//! summarized into the [`FlightRecorder`], whose JSON dump is returned
//! by the `dump` verb, logged to stderr when a request errors, and
//! drained on SIGINT shutdown. An optional side listener
//! (`--metrics-addr`) answers plain HTTP `GET /metrics` with the
//! Prometheus text exposition of the server counters and the
//! telemetry registry.

use crate::handlers;
use crate::protocol::{
    busy_response, error_response, ok_response, parse_request, Command, WireError, WIRE_SCHEMA,
};
use crate::signal;
use simdize::{IsaLevel, KernelCache};
use simdize_telemetry as telemetry;
use simdize_telemetry::{FlightEntry, FlightRecorder, Histogram, TraceId};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How a [`Server`] is sized. All knobs have serve-sensible defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing pipeline requests.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `busy`.
    pub queue_depth: usize,
    /// Lock-striped shards in the kernel cache.
    pub cache_shards: usize,
    /// LRU capacity per cache shard.
    pub cache_capacity: usize,
    /// Worker threads used *inside* one `sweep` request.
    pub sweep_threads: usize,
    /// Install a SIGINT handler so Ctrl-C shuts the server down
    /// (process-global; off by default so embedding tests and benches
    /// don't hijack the signal).
    pub handle_sigint: bool,
    /// Flight-recorder capacity: how many recent request summaries the
    /// server retains for `dump` / error / SIGINT postmortems.
    pub flight_capacity: usize,
    /// When set, a side listener on this address answers plain HTTP
    /// `GET /metrics` with the Prometheus text exposition.
    pub metrics_addr: Option<SocketAddr>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            cache_shards: 8,
            cache_capacity: 32,
            sweep_threads: 2,
            handle_sigint: false,
            flight_capacity: 128,
            metrics_addr: None,
        }
    }
}

/// One queued pipeline job: the parsed request plus the channel its
/// rendered response line goes back on.
struct Job {
    id: u64,
    trace: TraceId,
    cmd: Command,
    accepted_at: Instant,
    reply: mpsc::Sender<String>,
}

/// Bounded MPMC job queue with explicit rejection when full.
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    depth: usize,
}

impl JobQueue {
    fn new(depth: usize) -> JobQueue {
        JobQueue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues unless the queue is at capacity (the job is dropped
    /// and `false` returned — the caller answers `busy`). Never
    /// blocks.
    fn try_push(&self, job: Job) -> bool {
        let mut jobs = self.jobs.lock().expect("job queue poisoned");
        if jobs.len() >= self.depth {
            return false;
        }
        jobs.push_back(job);
        drop(jobs);
        self.ready.notify_one();
        true
    }

    /// Pops the next job, waiting in short slices so `stop` is
    /// observed; `None` once stopping and drained.
    fn pop(&self, stop: &AtomicBool) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if stop.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(jobs, Duration::from_millis(25))
                .expect("job queue poisoned");
            jobs = guard;
        }
    }

    fn len(&self) -> usize {
        self.jobs.lock().expect("job queue poisoned").len()
    }

    /// Removes and returns everything still queued (shutdown path:
    /// jobs that raced past the stopping workers get error replies so
    /// no connection thread blocks on `recv` forever).
    fn drain(&self) -> Vec<Job> {
        self.jobs
            .lock()
            .expect("job queue poisoned")
            .drain(..)
            .collect()
    }
}

/// Latency + traffic metrics, one histogram per verb plus an
/// aggregate, all in microseconds.
struct Metrics {
    all_us: Histogram,
    per_cmd: Vec<(&'static str, Histogram)>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            all_us: Histogram::new(),
            per_cmd: Vec::new(),
        }
    }

    fn record(&mut self, cmd: &'static str, us: u64) {
        self.all_us.observe(us);
        match self.per_cmd.iter_mut().find(|(name, _)| *name == cmd) {
            Some((_, h)) => h.observe(us),
            None => {
                let mut h = Histogram::new();
                h.observe(us);
                self.per_cmd.push((cmd, h));
            }
        }
    }
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    config: ServerConfig,
    cache: KernelCache,
    queue: JobQueue,
    metrics: Mutex<Metrics>,
    flight: FlightRecorder,
    started: Instant,
    stop: AtomicBool,
    requests: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
}

impl Shared {
    /// Record one finished request of `cmd` that took `elapsed`.
    fn record(&self, cmd: &'static str, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.metrics
            .lock()
            .expect("metrics poisoned")
            .record(cmd, us);
        self.requests.fetch_add(1, Ordering::Relaxed);
        if telemetry::enabled() {
            telemetry::counter("server.request").add(1);
            telemetry::histogram("server.latency_us").observe(us);
        }
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || (self.config.handle_sigint && signal::sigint_received())
    }

    /// Summarizes one finished request into the flight recorder.
    fn note_flight(
        &self,
        trace: TraceId,
        verb: &str,
        elapsed: Duration,
        attrs: std::collections::BTreeMap<String, String>,
        error: Option<String>,
    ) {
        self.flight.record(FlightEntry {
            seq: 0,
            trace_id: trace.to_string(),
            verb: verb.to_string(),
            latency_us: elapsed.as_micros().min(u64::MAX as u128) as u64,
            ok: error.is_none(),
            attrs,
            error,
        });
    }

    /// The Prometheus text exposition: server traffic counters and the
    /// aggregate latency summary (always live — they come from the
    /// server's own atomics), plus whatever the telemetry registry
    /// currently holds.
    fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in [
            ("requests_total", self.requests.load(Ordering::Relaxed)),
            ("busy_total", self.busy.load(Ordering::Relaxed)),
            ("errors_total", self.errors.load(Ordering::Relaxed)),
            ("connections_total", self.connections.load(Ordering::Relaxed)),
            ("flight_recorded_total", self.flight.recorded()),
        ] {
            let _ = writeln!(out, "# TYPE simdize_server_{name} counter");
            let _ = writeln!(out, "simdize_server_{name} {v}");
        }
        let _ = writeln!(out, "# TYPE simdize_server_uptime_ms gauge");
        let _ = writeln!(
            out,
            "simdize_server_uptime_ms {}",
            self.started.elapsed().as_millis()
        );
        {
            let metrics = self.metrics.lock().expect("metrics poisoned");
            let h = &metrics.all_us;
            let _ = writeln!(out, "# TYPE simdize_server_latency_us summary");
            let _ = writeln!(
                out,
                "simdize_server_latency_us{{quantile=\"0.5\"}} {}",
                h.quantile(0.5)
            );
            let _ = writeln!(
                out,
                "simdize_server_latency_us{{quantile=\"0.95\"}} {}",
                h.quantile(0.95)
            );
            let _ = writeln!(out, "simdize_server_latency_us_sum {}", h.sum());
            let _ = writeln!(out, "simdize_server_latency_us_count {}", h.count());
        }
        out.push_str(&telemetry::render_prometheus(&telemetry::metrics_snapshot()));
        out
    }

    /// The `stats` response body.
    fn stats_json(&self) -> String {
        let uptime = self.started.elapsed();
        let requests = self.requests.load(Ordering::Relaxed);
        let metrics = self.metrics.lock().expect("metrics poisoned");
        let mut per_cmd = String::new();
        for (k, (name, h)) in metrics.per_cmd.iter().enumerate() {
            if k > 0 {
                per_cmd.push(',');
            }
            per_cmd.push_str(&format!(
                "{{\"cmd\":\"{name}\",\"count\":{},\"p50_us\":{},\"p95_us\":{}}}",
                h.count(),
                h.quantile(0.5),
                h.quantile(0.95)
            ));
        }
        let cache = self.cache.stats();
        let occupancy: Vec<String> = cache.occupancy.iter().map(usize::to_string).collect();
        format!(
            "{{\"schema\":\"{WIRE_SCHEMA}\",\"isa\":\"{}\",\
             \"uptime_ms\":{},\"requests\":{requests},\
             \"busy\":{},\"errors\":{},\"connections\":{},\
             \"requests_per_sec\":{:.2},\
             \"latency\":{{\"count\":{},\"mean_us\":{:.1},\"p50_us\":{},\"p95_us\":{},\"max_us\":{}}},\
             \"commands\":[{per_cmd}],\
             \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{:.4},\
             \"occupied\":{},\"capacity_per_shard\":{},\"occupancy\":[{}]}},\
             \"queue\":{{\"depth\":{},\"capacity\":{}}},\"workers\":{},\
             \"flight\":{{\"recorded\":{},\"capacity\":{}}}}}",
            IsaLevel::detect(),
            uptime.as_millis(),
            self.busy.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.connections.load(Ordering::Relaxed),
            requests as f64 / uptime.as_secs_f64().max(1e-9),
            metrics.all_us.count(),
            metrics.all_us.mean(),
            metrics.all_us.quantile(0.5),
            metrics.all_us.quantile(0.95),
            metrics.all_us.max(),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.hit_rate(),
            cache.occupied(),
            cache.capacity_per_shard,
            occupancy.join(","),
            self.queue.len(),
            self.config.queue_depth,
            self.config.workers,
            self.flight.recorded(),
            self.flight.capacity(),
        )
    }
}

/// What [`Server::serve`] reports once the server has drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Total requests answered (including errors and `busy`).
    pub requests: u64,
    /// Requests rejected with the `busy` envelope.
    pub busy: u64,
    /// Malformed or failed requests.
    pub errors: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

/// A bound (but not yet serving) simdization server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    metrics_listener: Option<(TcpListener, SocketAddr)>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), plus
    /// the metrics side listener when the config asks for one.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics_listener = match config.metrics_addr {
            Some(maddr) => {
                let l = TcpListener::bind(maddr)?;
                let bound = l.local_addr()?;
                Some((l, bound))
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            cache: KernelCache::new(config.cache_shards, config.cache_capacity),
            queue: JobQueue::new(config.queue_depth),
            metrics: Mutex::new(Metrics::new()),
            flight: FlightRecorder::new(config.flight_capacity, 8),
            started: Instant::now(),
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            config,
        });
        Ok(Server {
            listener,
            addr,
            metrics_listener,
            shared,
        })
    }

    /// The actually-bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The actually-bound metrics address, when the config asked for
    /// the `/metrics` side listener.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener.as_ref().map(|(_, a)| *a)
    }

    /// Serves until a `shutdown` request (or SIGINT, when configured)
    /// arrives, then drains workers and connections and returns the
    /// traffic summary.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the accept loop.
    pub fn serve(self) -> std::io::Result<ServeSummary> {
        if self.shared.config.handle_sigint {
            signal::install_sigint_handler();
        }
        self.listener.set_nonblocking(true)?;
        let metrics_thread = match self.metrics_listener {
            Some((listener, _)) => {
                listener.set_nonblocking(true)?;
                let shared = Arc::clone(&self.shared);
                Some(
                    thread::Builder::new()
                        .name("simdize-metrics".to_string())
                        .spawn(move || metrics_loop(&listener, &shared))
                        .expect("spawn metrics thread"),
                )
            }
            None => None,
        };
        let workers: Vec<thread::JoinHandle<()>> = (0..self.shared.config.workers.max(1))
            .map(|k| {
                let shared = Arc::clone(&self.shared);
                thread::Builder::new()
                    .name(format!("simdize-worker-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        while !self.shared.stopping() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let conn_id = self.shared.connections.fetch_add(1, Ordering::Relaxed) + 1;
                    let shared = Arc::clone(&self.shared);
                    // Thousands of concurrent connections on small
                    // stacks: the connection loop only parses and
                    // forwards, heavy work happens on the worker pool.
                    let handle = thread::Builder::new()
                        .name("simdize-conn".to_string())
                        .stack_size(256 * 1024)
                        .spawn(move || connection_loop(stream, &shared, conn_id))
                        .expect("spawn connection thread");
                    conns.push(handle);
                    // Opportunistically reap finished connections so
                    // the handle list doesn't grow without bound.
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: stop is set; wake the workers, let connections notice
        // via their read timeouts.
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.ready.notify_all();
        for w in workers {
            let _ = w.join();
        }
        // Connections still mid-request may enqueue after the workers
        // exited; keep draining (answering "shutting down") until every
        // connection thread has returned.
        loop {
            for job in self.shared.queue.drain() {
                let _ = job.reply.send(error_response(
                    job.id,
                    &job.trace.to_string(),
                    "server shutting down",
                ));
            }
            conns.retain(|c| !c.is_finished());
            if conns.is_empty() {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        if let Some(m) = metrics_thread {
            let _ = m.join();
        }
        // SIGINT drain: leave the postmortem on stderr before the
        // process goes away.
        if self.shared.config.handle_sigint && signal::sigint_received() {
            eprintln!(
                "simdize serve: SIGINT flight dump {}",
                self.shared.flight.render_json(false)
            );
        }
        Ok(ServeSummary {
            requests: self.shared.requests.load(Ordering::Relaxed),
            busy: self.shared.busy.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            connections: self.shared.connections.load(Ordering::Relaxed),
        })
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop(&shared.stop) {
        let cmd_name = job.cmd.name();
        // The request scope collects this request's spans and pipeline
        // attributes (policy, isa, cache hit/miss, …) — per request,
        // even with many workers executing concurrently.
        let scope = telemetry::begin_request(job.trace, cmd_name);
        let outcome = handlers::execute(&job.cmd, job.trace, &shared.cache, &shared.config);
        let trace = scope.finish(outcome.as_ref().err().cloned());
        let line = match outcome {
            Ok(result) => ok_response(job.id, &trace.trace_id, &result),
            Err(message) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                error_response(job.id, &trace.trace_id, &message)
            }
        };
        let elapsed = job.accepted_at.elapsed();
        let failed = trace.error.is_some();
        shared.note_flight(job.trace, cmd_name, elapsed, trace.attrs, trace.error);
        if failed {
            // Error postmortem: the dump (which includes this request)
            // goes to the server log.
            eprintln!(
                "simdize serve: request {} ({cmd_name}) failed; flight dump {}",
                job.trace,
                shared.flight.render_json(false)
            );
        }
        shared.record(cmd_name, elapsed);
        // A send error means the client hung up; nothing to do.
        let _ = job.reply.send(line);
    }
}

/// Answers plain HTTP on the metrics side listener until the server
/// stops. Only `GET /metrics` exists; everything else is 404.
fn metrics_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => serve_metrics_conn(stream, shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn serve_metrics_conn(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block so the peer sees a clean half-close.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header.trim().is_empty() {
            break;
        }
        header.clear();
    }
    let mut stream = stream;
    let (status, body) = if request_line.starts_with("GET /metrics") {
        ("200 OK", shared.metrics_text())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

fn connection_loop(stream: TcpStream, shared: &Shared, conn_id: u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // The short read timeout doubles as the shutdown poll: on
        // timeout any partially-read bytes stay buffered in `line`
        // only if read_line appended them — so we must not clear the
        // buffer between retries of the same line.
        let n = loop {
            match reader.read_line(&mut line) {
                Ok(n) => break n,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    if shared.stopping() {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        if n == 0 {
            return; // client closed
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = handle_line(trimmed, shared, conn_id);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .is_err()
        {
            return;
        }
        if shared.stopping() {
            return;
        }
    }
}

/// Parses and answers one request line (inline for control-plane
/// verbs, via the worker pool for pipeline verbs). Every line —
/// including malformed ones — gets a trace id and a flight entry.
fn handle_line(line: &str, shared: &Shared, conn_id: u64) -> String {
    let started = Instant::now();
    let trace = TraceId::next(conn_id);
    let trace_str = trace.to_string();
    let no_attrs = std::collections::BTreeMap::new;
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(WireError { id, message }) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            shared.note_flight(trace, "error", started.elapsed(), no_attrs(), Some(message.clone()));
            shared.record("error", started.elapsed());
            return error_response(id.unwrap_or(0), &trace_str, &message);
        }
    };
    match &request.cmd {
        Command::Ping => {
            let out = ok_response(
                request.id,
                &trace_str,
                &format!("{{\"pong\":true,\"schema\":\"{WIRE_SCHEMA}\"}}"),
            );
            shared.note_flight(trace, "ping", started.elapsed(), no_attrs(), None);
            shared.record("ping", started.elapsed());
            out
        }
        Command::Stats => {
            let out = ok_response(request.id, &trace_str, &shared.stats_json());
            shared.note_flight(trace, "stats", started.elapsed(), no_attrs(), None);
            shared.record("stats", started.elapsed());
            out
        }
        Command::Dump => {
            let out = ok_response(request.id, &trace_str, &shared.flight.render_json(false));
            shared.note_flight(trace, "dump", started.elapsed(), no_attrs(), None);
            shared.record("dump", started.elapsed());
            out
        }
        Command::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            shared.note_flight(trace, "shutdown", started.elapsed(), no_attrs(), None);
            shared.record("shutdown", started.elapsed());
            ok_response(request.id, &trace_str, "{\"stopping\":true}")
        }
        _ => {
            let (tx, rx) = mpsc::channel();
            let job = Job {
                id: request.id,
                trace,
                cmd: request.cmd,
                accepted_at: started,
                reply: tx,
            };
            if shared.queue.try_push(job) {
                rx.recv().unwrap_or_else(|_| {
                    error_response(request.id, &trace_str, "server shutting down")
                })
            } else {
                shared.busy.fetch_add(1, Ordering::Relaxed);
                shared.requests.fetch_add(1, Ordering::Relaxed);
                if telemetry::enabled() {
                    telemetry::counter("server.busy").add(1);
                }
                shared.note_flight(
                    trace,
                    "busy",
                    started.elapsed(),
                    no_attrs(),
                    Some("busy: job queue full".to_string()),
                );
                busy_response(request.id, &trace_str)
            }
        }
    }
}
