//! Minimal SIGINT hook so `simdize serve` shuts down cleanly on
//! Ctrl-C.
//!
//! The workspace is offline-only (no `libc`, no `signal-hook`), so
//! this is a direct FFI declaration of POSIX `signal(2)`. The handler
//! does the only thing that is async-signal-safe here: it stores into
//! a process-wide atomic flag, which the server's accept loop polls.
//! This is the single `unsafe` block in the workspace; everything else
//! remains `#![forbid(unsafe_code)]`.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    /// POSIX signal number for SIGINT (Ctrl-C).
    const SIGINT: i32 = 2;

    type Handler = extern "C" fn(i32);

    extern "C" {
        /// `signal(2)`. The return value (the previous handler) is
        /// deliberately ignored.
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        super::SIGINT_SEEN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the SIGINT handler (idempotent). On non-Unix targets this
/// is a no-op and only a `shutdown` request stops the server.
pub fn install_sigint_handler() {
    imp::install();
}

/// Whether SIGINT has been delivered since the handler was installed.
pub fn sigint_received() -> bool {
    SIGINT_SEEN.load(Ordering::SeqCst)
}
