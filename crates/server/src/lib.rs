//! Simdization-as-a-service: a long-running TCP server around the
//! simdize pipeline.
//!
//! The paper front-loads all alignment reasoning into compile time, so
//! a compiled kernel is pure function of *(program, runtime input,
//! memory layout)* — the perfect unit to cache and serve. This crate
//! provides:
//!
//! * [`Server`] — `bind` an address, then [`Server::serve`] runs a
//!   worker pool behind a bounded job queue, answering the versioned
//!   JSONL-over-TCP protocol in [`protocol`] (`simdize-wire/v1`). All
//!   `run`/`sweep` requests execute through one process-wide sharded
//!   [`simdize::KernelCache`], so repeated requests skip compilation
//!   entirely.
//! * explicit backpressure — a full queue answers
//!   `{"ok":false,"busy":true,...}` instead of buffering without
//!   bound, and graceful shutdown on a `shutdown` request or (when
//!   [`ServerConfig::handle_sigint`] is set) Ctrl-C.
//! * latency observability — per-request latency lands in
//!   [`simdize_telemetry::Histogram`]s and the `stats` verb reports
//!   p50/p95, requests/sec and the cache's hit/miss/evict counters.
//!
//! Everything is `std`: no async runtime, no HTTP stack, no serde —
//! the wire format is parsed with the same hand-rolled JSON reader the
//! bench-history tracker uses. The only `unsafe` in the workspace is
//! the tiny `signal(2)` FFI declaration in [`signal`], gated to the
//! CLI's opt-in Ctrl-C handling.
//!
//! # Example
//!
//! ```
//! use simdize_server::{Server, ServerConfig};
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let addr = server.local_addr();
//! let handle = std::thread::spawn(move || server.serve());
//!
//! let mut conn = TcpStream::connect(addr)?;
//! writeln!(conn, r#"{{"v":1,"id":1,"cmd":"ping"}}"#)?;
//! let mut line = String::new();
//! BufReader::new(conn.try_clone()?).read_line(&mut line)?;
//! assert!(line.contains("\"pong\":true"));
//! writeln!(conn, r#"{{"v":1,"id":2,"cmd":"shutdown"}}"#)?;
//! let summary = handle.join().unwrap()?;
//! assert!(summary.requests >= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod handlers;
pub mod protocol;
mod server;
#[allow(unsafe_code)]
pub mod signal;

pub use server::{ServeSummary, Server, ServerConfig};
