//! The `simdize-wire/v1` protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line:
//!
//! ```json
//! {"v":1,"id":7,"cmd":"run","source":"arrays { ... } for i in 0..ub { ... }","seed":3,"ub":500}
//! ```
//!
//! and every request gets exactly one response line, either
//!
//! ```json
//! {"v":1,"id":7,"trace":"c3-41","ok":true,"result":{...}}
//! ```
//!
//! or an error envelope:
//!
//! ```json
//! {"v":1,"id":7,"trace":"c3-41","ok":false,"error":"..."}
//! ```
//!
//! Every response carries `trace`: the server-assigned request trace
//! id (`c<connection>-<sequence>`, deterministic — no clock, no
//! randomness), the same id the flight recorder and the `trace` verb's
//! exported documents use, so one slow response correlates directly
//! with its span timeline and its postmortem entry.
//!
//! A server whose bounded job queue is full rejects with the
//! 503-flavoured
//! `{"v":1,"id":7,"trace":"...","ok":false,"busy":true,"error":"..."}`
//! instead of blocking the connection — clients are expected to back
//! off and retry.
//!
//! Commands: `ping`, `stats`, `dump` (the flight-recorder dump) and
//! `shutdown` are control-plane and are answered inline by the
//! connection thread; `compile`, `analyze`, `run`, `sweep`, `explain`,
//! `verify` and `trace` carry an inline loop `source` and are executed
//! on the worker pool. Optional fields: `policy`
//! (`zero|eager|lazy|dominant`), `seed`, `ub`, `params`
//! (array of integers), `engine` (`native|simd` — `simd` executes
//! `run`/`sweep` through the `std::arch` intrinsics backend at the
//! host's dispatched ISA; kernel-cache keys carry the ISA level so
//! entries never collide across backends) and, for `sweep`, `count`.
//! `verify` runs the
//! bounded-equivalence prover over its quick domain and returns the
//! `simdize-verify/v1` report. `trace` runs the request-scoped tracing
//! pipeline and returns the `simdize-trace/v1` document. Responses
//! report real wall time everywhere; the golden transcript test keeps
//! determinism by normalizing timing fields, not by zeroing them at
//! the source.

use simdize::Policy;
use simdize_telemetry::json::{self, Json};

/// Schema tag reported by `ping` and `stats` responses.
pub const WIRE_SCHEMA: &str = "simdize-wire/v1";

/// The protocol version every request must carry in `"v"`.
pub const WIRE_VERSION: u64 = 1;

/// Default memory-image seed when a request omits `"seed"`.
pub const DEFAULT_SEED: u64 = 2004;

/// Default trip count for runtime-`ub` loops when a request omits
/// `"ub"`.
pub const DEFAULT_UB: u64 = 1000;

/// Default seed count for `sweep` when a request omits `"count"`.
pub const DEFAULT_COUNT: usize = 8;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What to do.
    pub cmd: Command,
}

/// The request verb plus its payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe; answered inline.
    Ping,
    /// Server metrics snapshot; answered inline.
    Stats,
    /// Flight-recorder dump (the last N request summaries); answered
    /// inline.
    Dump,
    /// Graceful shutdown; answered inline, then the server drains.
    Shutdown,
    /// Generate vector code for the loop.
    Compile(ExecRequest),
    /// Generate then statically lint the vector code.
    Analyze(ExecRequest),
    /// Compile, bake (through the shared kernel cache), execute and
    /// verify against the scalar oracle.
    Run(ExecRequest),
    /// [`Command::Run`] over `count` memory seeds on the sweep runner.
    Sweep(ExecRequest),
    /// Full decision-trace report for the loop.
    Explain(ExecRequest),
    /// Quick bounded-equivalence proof of the loop (the
    /// `simdize-verify/v1` prover over its smoke-sized domain).
    Verify(ExecRequest),
    /// Request-scoped end-to-end trace of the loop, returning the
    /// `simdize-trace/v1` document under the request's own trace id.
    Trace(ExecRequest),
}

impl Command {
    /// Whether this command executes on the worker pool (as opposed to
    /// being answered inline by the connection thread).
    pub fn is_exec(&self) -> bool {
        !matches!(
            self,
            Command::Ping | Command::Stats | Command::Dump | Command::Shutdown
        )
    }

    /// The wire name of the verb.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Ping => "ping",
            Command::Stats => "stats",
            Command::Dump => "dump",
            Command::Shutdown => "shutdown",
            Command::Compile(_) => "compile",
            Command::Analyze(_) => "analyze",
            Command::Run(_) => "run",
            Command::Sweep(_) => "sweep",
            Command::Explain(_) => "explain",
            Command::Verify(_) => "verify",
            Command::Trace(_) => "trace",
        }
    }
}

/// Per-request executor selection for `run`/`sweep`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireEngine {
    /// The trace-fused compiled-kernel engine (wire name `native`).
    #[default]
    Native,
    /// The `std::arch` intrinsics backend at the host's dispatched ISA
    /// (wire name `simd`).
    Simd,
}

/// Payload of the pipeline-executing commands.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecRequest {
    /// The loop in the textual syntax, inline.
    pub source: String,
    /// Shift-placement policy override (default: chosen per loop).
    pub policy: Option<Policy>,
    /// Memory-image seed.
    pub seed: u64,
    /// Trip count for runtime-`ub` loops.
    pub ub: u64,
    /// Loop parameter values, in declaration order.
    pub params: Vec<i64>,
    /// Seeds to cover (`sweep` only).
    pub count: usize,
    /// Executor for `run`/`sweep` (default: the fused engine).
    pub engine: WireEngine,
}

/// A request that could not be parsed. Carries the id when one could
/// be recovered from the malformed line so the client can still
/// correlate the error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The request id, if the line got far enough to contain one.
    pub id: Option<u64>,
    /// What was wrong with the line.
    pub message: String,
}

impl WireError {
    fn new(id: Option<u64>, message: impl Into<String>) -> WireError {
        WireError {
            id,
            message: message.into(),
        }
    }
}

fn get_u64(obj: &Json, key: &str) -> Option<u64> {
    obj.get(key).and_then(Json::as_f64).map(|v| v as u64)
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`WireError`] (with the id when recoverable) on malformed
/// JSON, a missing/unsupported version, an unknown command, or a
/// malformed payload.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let doc = json::parse(line).map_err(|e| WireError::new(None, format!("bad JSON: {e}")))?;
    let id = get_u64(&doc, "id");
    let v = get_u64(&doc, "v").ok_or_else(|| WireError::new(id, "missing protocol version `v`"))?;
    if v != WIRE_VERSION {
        return Err(WireError::new(
            id,
            format!("unsupported protocol version {v} (this server speaks {WIRE_VERSION})"),
        ));
    }
    let id = id.ok_or_else(|| WireError::new(None, "missing request `id`"))?;
    let cmd = doc
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new(Some(id), "missing `cmd`"))?;
    let cmd = match cmd {
        "ping" => Command::Ping,
        "stats" => Command::Stats,
        "dump" => Command::Dump,
        "shutdown" => Command::Shutdown,
        "compile" => Command::Compile(parse_exec(&doc, id)?),
        "analyze" => Command::Analyze(parse_exec(&doc, id)?),
        "run" => Command::Run(parse_exec(&doc, id)?),
        "sweep" => Command::Sweep(parse_exec(&doc, id)?),
        "explain" => Command::Explain(parse_exec(&doc, id)?),
        "verify" => Command::Verify(parse_exec(&doc, id)?),
        "trace" => Command::Trace(parse_exec(&doc, id)?),
        other => {
            return Err(WireError::new(
                Some(id),
                format!(
                    "unknown cmd `{other}` (expected ping|stats|dump|shutdown|compile|analyze|run|sweep|explain|verify|trace)"
                ),
            ))
        }
    };
    Ok(Request { id, cmd })
}

fn parse_exec(doc: &Json, id: u64) -> Result<ExecRequest, WireError> {
    let source = doc
        .get("source")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new(Some(id), "missing `source` (inline loop text)"))?
        .to_string();
    let policy = match doc.get("policy").and_then(Json::as_str) {
        None => None,
        Some("zero") => Some(Policy::Zero),
        Some("eager") => Some(Policy::Eager),
        Some("lazy") => Some(Policy::Lazy),
        Some("dominant") => Some(Policy::Dominant),
        Some("optimal") => Some(Policy::Optimal),
        Some(other) => {
            return Err(WireError::new(
                Some(id),
                format!("unknown policy `{other}` (expected zero|eager|lazy|dominant|optimal)"),
            ))
        }
    };
    let mut params = Vec::new();
    if let Some(arr) = doc.get("params") {
        let arr = arr
            .as_arr()
            .ok_or_else(|| WireError::new(Some(id), "`params` must be an array of integers"))?;
        for p in arr {
            let v = p
                .as_f64()
                .ok_or_else(|| WireError::new(Some(id), "`params` must be an array of integers"))?;
            params.push(v as i64);
        }
    }
    let engine = match doc.get("engine").and_then(Json::as_str) {
        None | Some("native") => WireEngine::Native,
        Some("simd") => WireEngine::Simd,
        Some(other) => {
            return Err(WireError::new(
                Some(id),
                format!("unknown engine `{other}` (expected native|simd)"),
            ))
        }
    };
    Ok(ExecRequest {
        source,
        policy,
        seed: get_u64(doc, "seed").unwrap_or(DEFAULT_SEED),
        ub: get_u64(doc, "ub").unwrap_or(DEFAULT_UB),
        params,
        count: get_u64(doc, "count").map_or(DEFAULT_COUNT, |c| c as usize),
        engine,
    })
}

/// A success envelope carrying the server-assigned trace id. `result`
/// must already be rendered JSON — it is embedded verbatim.
pub fn ok_response(id: u64, trace: &str, result: &str) -> String {
    format!(
        "{{\"v\":{WIRE_VERSION},\"id\":{id},\"trace\":\"{}\",\"ok\":true,\"result\":{result}}}",
        json::escape(trace)
    )
}

/// A failure envelope with a readable message.
pub fn error_response(id: u64, trace: &str, message: &str) -> String {
    format!(
        "{{\"v\":{WIRE_VERSION},\"id\":{id},\"trace\":\"{}\",\"ok\":false,\"error\":\"{}\"}}",
        json::escape(trace),
        json::escape(message)
    )
}

/// The backpressure envelope: the bounded job queue is full, try again
/// later. Distinguished from other failures by `"busy":true`.
pub fn busy_response(id: u64, trace: &str) -> String {
    format!(
        "{{\"v\":{WIRE_VERSION},\"id\":{id},\"trace\":\"{}\",\"ok\":false,\"busy\":true,\
         \"error\":\"busy: job queue full, retry later\"}}",
        json::escape(trace)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_control_and_exec_requests() {
        let r = parse_request(r#"{"v":1,"id":3,"cmd":"ping"}"#).unwrap();
        assert_eq!(r.id, 3);
        assert_eq!(r.cmd, Command::Ping);
        assert!(!r.cmd.is_exec());

        let r = parse_request(
            r#"{"v":1,"id":9,"cmd":"sweep","source":"x","policy":"lazy","seed":5,"ub":64,"count":12,"params":[3,-1]}"#,
        )
        .unwrap();
        let Command::Sweep(exec) = r.cmd else {
            panic!("expected sweep");
        };
        assert_eq!(exec.source, "x");
        assert_eq!(exec.policy, Some(Policy::Lazy));
        assert_eq!((exec.seed, exec.ub, exec.count), (5, 64, 12));
        assert_eq!(exec.params, vec![3, -1]);
        assert_eq!(exec.engine, WireEngine::Native);

        let r = parse_request(r#"{"v":1,"id":2,"cmd":"run","source":"x","engine":"simd"}"#)
            .unwrap();
        let Command::Run(exec) = r.cmd else {
            panic!("expected run");
        };
        assert_eq!(exec.engine, WireEngine::Simd);
    }

    #[test]
    fn exec_defaults_apply() {
        let r = parse_request(r#"{"v":1,"id":1,"cmd":"run","source":"s"}"#).unwrap();
        let Command::Run(exec) = r.cmd else {
            panic!("expected run");
        };
        assert_eq!(exec.seed, DEFAULT_SEED);
        assert_eq!(exec.ub, DEFAULT_UB);
        assert_eq!(exec.count, DEFAULT_COUNT);
        assert_eq!(exec.policy, None);
        assert!(exec.params.is_empty());
    }

    #[test]
    fn malformed_requests_report_ids_when_possible() {
        let e = parse_request("not json").unwrap_err();
        assert_eq!(e.id, None);
        assert!(e.message.contains("bad JSON"));

        let e = parse_request(r#"{"id":4,"cmd":"ping"}"#).unwrap_err();
        assert_eq!(e.id, Some(4));
        assert!(e.message.contains("version"));

        let e = parse_request(r#"{"v":2,"id":4,"cmd":"ping"}"#).unwrap_err();
        assert!(e.message.contains("unsupported protocol version 2"));

        let e = parse_request(r#"{"v":1,"cmd":"ping"}"#).unwrap_err();
        assert!(e.message.contains("missing request `id`"));

        let e = parse_request(r#"{"v":1,"id":7,"cmd":"frobnicate"}"#).unwrap_err();
        assert_eq!(e.id, Some(7));
        assert!(e.message.contains("unknown cmd"));

        let e = parse_request(r#"{"v":1,"id":7,"cmd":"run"}"#).unwrap_err();
        assert!(e.message.contains("missing `source`"));

        let e = parse_request(r#"{"v":1,"id":7,"cmd":"run","source":"s","policy":"x"}"#)
            .unwrap_err();
        assert!(e.message.contains("unknown policy"));

        let e = parse_request(r#"{"v":1,"id":7,"cmd":"run","source":"s","params":"no"}"#)
            .unwrap_err();
        assert!(e.message.contains("`params` must be an array"));

        let e = parse_request(r#"{"v":1,"id":7,"cmd":"run","source":"s","engine":"jit"}"#)
            .unwrap_err();
        assert!(e.message.contains("unknown engine"));
    }

    #[test]
    fn envelopes_are_single_line_json_and_echo_the_trace_id() {
        for line in [
            ok_response(5, "c1-7", r#"{"pong":true}"#),
            error_response(5, "c1-7", "oh \"no\"\nbad"),
            busy_response(5, "c1-7"),
        ] {
            assert!(!line.contains('\n'));
            let doc = json::parse(&line).unwrap();
            assert_eq!(doc.get("v").and_then(Json::as_f64), Some(1.0));
            assert_eq!(doc.get("id").and_then(Json::as_f64), Some(5.0));
            assert_eq!(doc.get("trace").and_then(Json::as_str), Some("c1-7"));
        }
        let busy = json::parse(&busy_response(1, "c2-9")).unwrap();
        assert_eq!(busy.get("busy"), Some(&Json::Bool(true)));
        assert_eq!(busy.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn trace_and_dump_verbs_parse() {
        let r = parse_request(r#"{"v":1,"id":11,"cmd":"trace","source":"x"}"#).unwrap();
        let Command::Trace(exec) = r.cmd else {
            panic!("expected trace");
        };
        assert_eq!(exec.source, "x");
        assert_eq!(r.id, 11);

        let r = parse_request(r#"{"v":1,"id":12,"cmd":"dump"}"#).unwrap();
        assert_eq!(r.cmd, Command::Dump);
        assert!(!r.cmd.is_exec());
        assert_eq!(r.cmd.name(), "dump");
    }
}
