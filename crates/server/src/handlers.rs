//! Executes pipeline requests against the simdize toolchain.
//!
//! Every handler's `result` body is deterministic for a given request
//! on a fixed host: pipeline results carry no timestamps or cache-hit
//! markers, so a reply served from the kernel cache is byte-identical
//! to one that baked from scratch (the stress tests assert exactly
//! this, after normalizing the envelope's trace id). Wall-clock
//! observability lives in the `stats` verb, the trace export and the
//! flight recorder; the golden transcript test normalizes the timing
//! fields (`wall_ms`, `wall_us`, span durations) rather than the
//! handlers zeroing them at the source.

use crate::protocol::{Command, ExecRequest, WireEngine};
use crate::server::ServerConfig;
use simdize::{
    analyze_program, parse_program, run_sweep_shared, trace_source_with, AnalyzeOptions,
    KernelCache, ReuseMode, RunInput, Simdizer, SweepBackend, SweepJob, SweepOptions, Target,
    TraceId, VectorShape,
};
use simdize_explain::{render_json, Explainer};
use simdize_telemetry::json;

/// Runs one pipeline command to completion, using `cache` for baked
/// kernels. `trace` is the request's wire trace id (the `trace` verb
/// stamps it into the exported document). Returns the rendered
/// `result` JSON on success, a readable message on failure.
pub fn execute(
    cmd: &Command,
    trace_id: TraceId,
    cache: &KernelCache,
    config: &ServerConfig,
) -> Result<String, String> {
    match cmd {
        Command::Compile(req) => compile(req),
        Command::Analyze(req) => analyze(req),
        Command::Run(req) => run(req, cache),
        Command::Sweep(req) => sweep(req, cache, config),
        Command::Explain(req) => explain(req),
        Command::Verify(req) => verify(req, config),
        Command::Trace(req) => trace(req, trace_id),
        // Control-plane verbs never reach the worker pool.
        Command::Ping | Command::Stats | Command::Dump | Command::Shutdown => {
            Err("internal: control command on worker pool".to_string())
        }
    }
}

fn driver(req: &ExecRequest) -> Simdizer {
    let mut driver = Simdizer::new()
        .shape(VectorShape::V16)
        .reuse(ReuseMode::SoftwarePipeline)
        .target(Target::Aligned);
    if let Some(p) = req.policy {
        driver = driver.policy(p);
    }
    driver
}

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// Maps the wire engine choice onto the sweep runner's backend. Both
/// backends report identical stats by construction, so responses stay
/// byte-identical across hosts; only the kernel-cache keys (which carry
/// the dispatched ISA) and the execution path differ.
fn backend(req: &ExecRequest) -> SweepBackend {
    match req.engine {
        WireEngine::Native => SweepBackend::Baked,
        WireEngine::Simd => SweepBackend::Simd,
    }
}

fn compile(req: &ExecRequest) -> Result<String, String> {
    let program = parse_program(&req.source).map_err(err)?;
    let compiled = driver(req).compile(&program).map_err(err)?;
    Ok(format!(
        "{{\"code\":\"{}\",\"sections\":{{\"prologue\":{},\"body\":{},\"epilogue\":{}}}}}",
        json::escape(&compiled.to_string()),
        compiled.prologue().len(),
        compiled.body().len(),
        compiled.epilogue().len()
    ))
}

fn analyze(req: &ExecRequest) -> Result<String, String> {
    let program = parse_program(&req.source).map_err(err)?;
    let compiled = driver(req).compile(&program).map_err(err)?;
    // The exactly-once lint only applies to the standard unit-stride
    // stream generator (mirrors the CLI's `analyze`).
    let mut aopts = AnalyzeOptions::new();
    if program.all_refs().iter().all(|r| r.is_unit_stride()) {
        aopts = aopts.reuse(ReuseMode::SoftwarePipeline);
    }
    let report = analyze_program(&compiled, &aopts);
    Ok(format!(
        "{{\"deny\":{},\"warn\":{},\"report\":{}}}",
        report.deny_count(),
        report.warn_count(),
        report.render_json()
    ))
}

fn run(req: &ExecRequest, cache: &KernelCache) -> Result<String, String> {
    let program = parse_program(&req.source).map_err(err)?;
    let compiled = driver(req).compile(&program).map_err(err)?;
    let ub = compiled.source().trip().known().unwrap_or(req.ub);
    let job = SweepJob {
        program: compiled,
        seed: req.seed,
        input: RunInput {
            ub,
            params: req.params.clone(),
        },
    };
    let (outcomes, _) = run_sweep_shared(&[job], SweepOptions::new(1).backend(backend(req)), cache);
    let outcome = outcomes
        .into_iter()
        .next()
        .expect("one job in, one outcome out")
        .map_err(err)?;
    Ok(format!(
        "{{\"verified\":{},\"seed\":{},\"engine_ops\":{},\"scalar_ideal\":{},\
         \"opd\":{:.3},\"speedup\":{:.3}}}",
        outcome.verified,
        outcome.seed,
        outcome.stats.total(),
        outcome.scalar_ideal,
        outcome.stats.opd(outcome.data_produced),
        outcome.speedup()
    ))
}

fn sweep(req: &ExecRequest, cache: &KernelCache, config: &ServerConfig) -> Result<String, String> {
    let program = parse_program(&req.source).map_err(err)?;
    let compiled = driver(req).compile(&program).map_err(err)?;
    let count = req.count.clamp(1, 4096);
    let ub = compiled.source().trip().known().unwrap_or(req.ub);
    let jobs: Vec<SweepJob> = (0..count as u64)
        .map(|k| SweepJob {
            program: compiled.clone(),
            seed: req.seed.wrapping_add(k),
            input: RunInput {
                ub,
                params: req.params.clone(),
            },
        })
        .collect();
    let threads = config.sweep_threads.max(1);
    let (outcomes, _) =
        run_sweep_shared(&jobs, SweepOptions::new(threads).backend(backend(req)), cache);
    let mut verified = 0usize;
    let mut speedup_sum = 0.0;
    let mut min_speedup = f64::INFINITY;
    for outcome in outcomes {
        let o = outcome.map_err(err)?;
        verified += usize::from(o.verified);
        let s = o.speedup();
        speedup_sum += s;
        min_speedup = min_speedup.min(s);
    }
    Ok(format!(
        "{{\"count\":{count},\"verified\":{verified},\
         \"mean_speedup\":{:.3},\"min_speedup\":{:.3}}}",
        speedup_sum / count as f64,
        min_speedup
    ))
}

fn verify(req: &ExecRequest, config: &ServerConfig) -> Result<String, String> {
    let program = parse_program(&req.source).map_err(err)?;
    let mut vopts = simdize::VerifyOptions::quick();
    vopts.threads = config.sweep_threads.max(1);
    if let Some(p) = req.policy {
        vopts.policies = vec![p];
    }
    let report = simdize::prove_loop("wire", &program, &vopts);
    // wall_ms stays real (every verb reports true wall time); the
    // golden transcript normalizes it instead.
    Ok(format!("{{\"verify\":{}}}", report.render_json()))
}

fn trace(req: &ExecRequest, id: TraceId) -> Result<String, String> {
    // The traced pipeline chooses its own (deterministic) driver
    // configuration; the request's policy/seed knobs do not apply —
    // what matters is that the exported document carries the wire
    // request's trace id, so response envelope and timeline agree.
    let outcome = trace_source_with(&req.source, id).map_err(err)?;
    Ok(outcome.trace.render_json(false))
}

fn explain(req: &ExecRequest) -> Result<String, String> {
    let program = parse_program(&req.source).map_err(err)?;
    let mut explainer = Explainer::new()
        .shape(VectorShape::V16)
        .reuse(ReuseMode::SoftwarePipeline)
        .seed(req.seed)
        .ub(req.ub)
        .params(req.params.clone());
    if let Some(p) = req.policy {
        explainer = explainer.policy(p);
    }
    let report = explainer.explain(&program).map_err(err)?;
    Ok(format!("{{\"report\":{}}}", render_json(&report)))
}
