//! Mutation tests: every lint must fire, with a correct structured
//! diagnostic, when its defect is injected into a known-good program.
//!
//! Each test compiles a program the analyzer accepts, asserts it is
//! clean, applies one surgical mutation through the VIR mutation API,
//! and asserts the expected lint fires in the expected section with a
//! rendered explanation.

use simdize_analysis::{analyze_program, AnalysisReport, AnalyzeOptions, Level, Lint, Section};
use simdize_codegen::{generate, Addr, CodegenOptions, ReuseMode, SExpr, SimdProgram, VInst};
use simdize_ir::{parse_program, VectorShape};
use simdize_reorg::{Policy, ReorgGraph};

/// The paper's Figure 1 shape: every reference misaligned differently,
/// so the generated code exercises shifts and both splices.
const FIG1: &str = "arrays { a: i32[256] @ 0; b: i32[256] @ 0; c: i32[256] @ 0; }
                    for i in 0..200 { a[i+3] = b[i+1] + c[i+2]; }";

fn compile(src: &str, policy: Policy, reuse: ReuseMode, unroll: bool) -> SimdProgram {
    let p = parse_program(src).unwrap();
    let g = ReorgGraph::build(&p, VectorShape::V16)
        .unwrap()
        .with_policy(policy)
        .unwrap();
    generate(&g, &CodegenOptions::default().reuse(reuse).unroll(unroll)).unwrap()
}

fn assert_clean(prog: &SimdProgram, opts: &AnalyzeOptions) {
    let report = analyze_program(prog, opts);
    assert!(
        report.is_clean(),
        "baseline program should be clean:\n{}",
        report.render_text()
    );
}

fn findings_of(report: &AnalysisReport, lint: Lint) -> Vec<simdize_analysis::Finding> {
    report
        .findings()
        .iter()
        .filter(|f| f.lint == lint)
        .cloned()
        .collect()
}

#[test]
fn skewed_shift_amount_breaks_store_bytes() {
    let mut prog = compile(FIG1, Policy::Zero, ReuseMode::None, false);
    let opts = AnalyzeOptions::new();
    assert_clean(&prog, &opts);

    // Skew the first constant vshiftpair amount in the body by one
    // byte: every lane now holds the neighbouring stream byte, which
    // constraint (C.2)/(C.3) checking must reject at the store.
    let skewed = prog.body_mut().iter_mut().find_map(|inst| match inst {
        VInst::ShiftPair { amt, .. } => {
            let a = amt.as_const()?;
            *amt = SExpr::c(if a < 16 { a + 1 } else { a - 1 });
            Some(())
        }
        _ => None,
    });
    assert!(skewed.is_some(), "body should contain a constant shift");

    let report = analyze_program(&prog, &opts);
    let hits = findings_of(&report, Lint::StoreByteMismatch);
    assert!(!hits.is_empty(), "expected a finding:\n{}", report.render_text());
    let f = &hits[0];
    assert_eq!(f.level, Level::Deny);
    assert_eq!(f.section, Section::Body);
    assert!(f.register.is_some(), "store findings name the stored register");
    assert!(
        f.message.contains("must come from the source stream bytes")
            || f.message.contains("neither the element's stream bytes"),
        "diagnostic should explain the provenance mismatch: {}",
        f.message
    );
    assert!(
        f.message.contains("vstore a["),
        "diagnostic should render the store operand: {}",
        f.message
    );
    assert!(report.deny_count() > 0);
}

#[test]
fn skewed_prologue_splice_clobbers_preceding_bytes() {
    let mut prog = compile(FIG1, Policy::Zero, ReuseMode::None, false);
    let opts = AnalyzeOptions::new();
    assert_clean(&prog, &opts);

    // Move the prologue partial-store boundary one byte down: the byte
    // just before the store's first element is now overwritten with
    // computed data instead of preserving the original memory.
    let skewed = prog.prologue_mut().iter_mut().find_map(|inst| match inst {
        VInst::Splice { point, .. } => {
            let p = point.as_const()?;
            assert!(p > 0, "prologue splice keeps a positive prefix");
            *point = SExpr::c(p - 1);
            Some(())
        }
        _ => None,
    });
    assert!(skewed.is_some(), "prologue should contain a constant splice");

    let report = analyze_program(&prog, &opts);
    let hits = findings_of(&report, Lint::SpliceClobber);
    assert!(!hits.is_empty(), "expected a finding:\n{}", report.render_text());
    let f = &hits[0];
    assert_eq!(f.level, Level::Deny);
    assert_eq!(f.section, Section::Prologue);
    assert!(
        f.message.contains("original memory byte"),
        "diagnostic should explain the clobber: {}",
        f.message
    );
}

#[test]
fn duplicated_load_breaks_exactly_once() {
    let mut prog = compile(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline, false);
    let opts = AnalyzeOptions::new()
        .reuse(ReuseMode::SoftwarePipeline)
        .memnorm(true);
    assert_clean(&prog, &opts);

    // Re-issue a chunk load the pipelined body already performs: the
    // §5 exactly-once guarantee is gone.
    let addr = prog
        .body()
        .iter()
        .find_map(|inst| match inst {
            VInst::LoadA { addr, .. } => Some(*addr),
            _ => None,
        })
        .expect("pipelined body should load chunks");
    let dst = prog.alloc_vreg();
    prog.body_mut().push(VInst::LoadA { dst, addr });

    let report = analyze_program(&prog, &opts);
    let hits = findings_of(&report, Lint::ChunkLoadedTwice);
    assert!(!hits.is_empty(), "expected a finding:\n{}", report.render_text());
    let f = &hits[0];
    assert_eq!(f.level, Level::Deny);
    assert_eq!(f.section, Section::Body);
    assert!(
        f.message.contains("exactly once") || f.message.contains("already loaded"),
        "diagnostic should cite the exactly-once guarantee: {}",
        f.message
    );
}

#[test]
fn useless_and_chained_shifts_are_flagged() {
    let mut prog = compile(FIG1, Policy::Zero, ReuseMode::None, false);
    let opts = AnalyzeOptions::new();
    assert_clean(&prog, &opts);

    let src = prog
        .body()
        .iter()
        .find_map(|inst| inst.def())
        .expect("body defines registers");
    // A shift by zero is a no-op ...
    let noop = prog.alloc_vreg();
    // ... and a rotation of a rotation should be folded into one.
    let rot1 = prog.alloc_vreg();
    let rot2 = prog.alloc_vreg();
    prog.body_mut().extend([
        VInst::ShiftPair {
            dst: noop,
            a: src,
            b: src,
            amt: SExpr::c(0),
        },
        VInst::ShiftPair {
            dst: rot1,
            a: src,
            b: src,
            amt: SExpr::c(4),
        },
        VInst::ShiftPair {
            dst: rot2,
            a: rot1,
            b: rot1,
            amt: SExpr::c(4),
        },
    ]);

    let report = analyze_program(&prog, &opts);
    let hits = findings_of(&report, Lint::RedundantShift);
    assert!(hits.len() >= 2, "expected two findings:\n{}", report.render_text());
    assert!(hits.iter().all(|f| f.level == Level::Warn));
    assert!(
        hits.iter().any(|f| f.message.contains("no-op")),
        "{}",
        report.render_text()
    );
    assert!(
        hits.iter().any(|f| f.message.contains("fold into one vshiftpair")),
        "{}",
        report.render_text()
    );
    // Warn-level findings alone must not flip the deny gate.
    assert_eq!(report.deny_count(), 0);

    // The registry honours level overrides: denied, the same finding
    // gates; allowed, it disappears.
    let denied = analyze_program(
        &prog,
        &AnalyzeOptions::new().level(Lint::RedundantShift, Level::Deny),
    );
    assert!(denied.deny_count() >= 2);
    let allowed = analyze_program(
        &prog,
        &AnalyzeOptions::new().level(Lint::RedundantShift, Level::Allow),
    );
    assert!(findings_of(&allowed, Lint::RedundantShift).is_empty());
}

#[test]
fn unconsumed_load_is_dead() {
    let mut prog = compile(FIG1, Policy::Zero, ReuseMode::None, false);
    let opts = AnalyzeOptions::new();
    assert_clean(&prog, &opts);

    // Load a chunk of `b` that no store ever consumes.
    let dst = prog.alloc_vreg();
    prog.body_mut().push(VInst::LoadA {
        dst,
        addr: Addr::new(simdize_ir::ArrayId::from_index(1), 0),
    });

    let report = analyze_program(&prog, &opts);
    let hits = findings_of(&report, Lint::DeadLoad);
    assert!(!hits.is_empty(), "expected a finding:\n{}", report.render_text());
    let f = &hits[0];
    assert_eq!(f.level, Level::Warn);
    assert_eq!(f.section, Section::Body);
    assert_eq!(f.register, Some(dst));
    assert!(
        f.message.contains("never reaches any store"),
        "diagnostic should explain the dead value: {}",
        f.message
    );
}

#[test]
fn rendered_report_shapes() {
    // The text and JSON renderings carry the structured fields through.
    let mut prog = compile(FIG1, Policy::Zero, ReuseMode::None, false);
    let dst = prog.alloc_vreg();
    prog.body_mut().push(VInst::LoadA {
        dst,
        addr: Addr::new(simdize_ir::ArrayId::from_index(1), 0),
    });
    let report = analyze_program(&prog, &AnalyzeOptions::new());
    let text = report.render_text();
    assert!(text.contains("warn[dead-load] body["), "{text}");
    let json = report.render_json();
    assert!(json.contains("\"lint\":\"dead-load\""), "{json}");
    assert!(json.contains("\"section\":\"body\""), "{json}");
}
