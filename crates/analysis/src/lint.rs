//! The lint registry: lint catalog, severity levels, structured
//! findings and their text/JSON renderings.

use simdize_codegen::VReg;
use std::fmt;
use std::str::FromStr;

/// The catalog of lints the analyzer can report.
///
/// Each lint is a static check on *generated* vector code — the output
/// of the full pass pipeline — tied to one of the paper's validity
/// obligations (constraints (C.2)/(C.3), the §5 exactly-once chunk
/// guarantee, or plain code quality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// A store byte provably does not hold the stream byte the source
    /// loop computes for that memory location — the static form of the
    /// paper's constraints (C.2)/(C.3) checked on the output code.
    StoreByteMismatch,
    /// A reuse-enabled program (software pipelining or predictive
    /// commoning) reloads a 16-byte chunk of a static stream in its
    /// steady state, violating the §5 exactly-once guarantee.
    ChunkLoadedTwice,
    /// A `vshiftpair` that shifts by 0 (or by a whole register), or two
    /// adjacent constant rotations that could fold into one.
    RedundantShift,
    /// A loaded chunk whose bytes never reach any store in any analyzed
    /// execution scenario.
    DeadLoad,
    /// A partial store in the prologue or epilogue overwrites bytes
    /// outside its target region instead of preserving the original
    /// memory there (a broken `vsplice` window).
    SpliceClobber,
}

impl Lint {
    /// Every lint, in reporting order.
    pub const ALL: [Lint; 5] = [
        Lint::StoreByteMismatch,
        Lint::SpliceClobber,
        Lint::ChunkLoadedTwice,
        Lint::RedundantShift,
        Lint::DeadLoad,
    ];

    /// The lint's kebab-case name, as used by `--lint name=level`.
    pub fn name(self) -> &'static str {
        match self {
            Lint::StoreByteMismatch => "store-byte-mismatch",
            Lint::ChunkLoadedTwice => "chunk-loaded-twice",
            Lint::RedundantShift => "redundant-shift",
            Lint::DeadLoad => "dead-load",
            Lint::SpliceClobber => "splice-clobber",
        }
    }

    /// Parses a lint from its kebab-case name.
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.name() == name)
    }

    /// The severity the lint reports at unless overridden.
    pub fn default_level(self) -> Level {
        match self {
            Lint::StoreByteMismatch | Lint::ChunkLoadedTwice | Lint::SpliceClobber => Level::Deny,
            Lint::RedundantShift | Lint::DeadLoad => Level::Warn,
        }
    }

    /// One-line description for help output.
    pub fn description(self) -> &'static str {
        match self {
            Lint::StoreByteMismatch => {
                "a store byte does not come from the correct source-stream byte (C.2/C.3)"
            }
            Lint::ChunkLoadedTwice => {
                "a reuse-enabled steady state reloads a chunk of a static stream (§5)"
            }
            Lint::RedundantShift => "a vshiftpair is a no-op or composable with its input rotation",
            Lint::DeadLoad => "a loaded chunk never reaches any store",
            Lint::SpliceClobber => {
                "a prologue/epilogue partial store overwrites bytes outside its target region"
            }
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The severity a lint reports at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The lint is disabled; its findings are discarded.
    Allow,
    /// The finding is reported but does not fail the analysis.
    Warn,
    /// The finding fails the analysis (non-zero CLI exit, compile gate
    /// error).
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        })
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s {
            "allow" => Ok(Level::Allow),
            "warn" => Ok(Level::Warn),
            "deny" => Ok(Level::Deny),
            other => Err(format!(
                "unknown lint level `{other}` (expected allow|warn|deny)"
            )),
        }
    }
}

/// Which section of the [`simdize_codegen::SimdProgram`] a finding
/// points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Section {
    /// The once-executed prologue (`i = 0`).
    Prologue,
    /// The steady-state body.
    Body,
    /// The unrolled two-iteration body.
    BodyPair,
    /// The once-executed epilogue.
    Epilogue,
}

impl Section {
    /// The section's display name.
    pub fn name(self) -> &'static str {
        match self {
            Section::Prologue => "prologue",
            Section::Body => "body",
            Section::BodyPair => "body-pair",
            Section::Epilogue => "epilogue",
        }
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint that fired.
    pub lint: Lint,
    /// The severity it fired at (after level overrides).
    pub level: Level,
    /// The section the finding points into.
    pub section: Section,
    /// The top-level instruction index within the section.
    pub index: usize,
    /// The register involved, when one is (the stored/loaded register).
    pub register: Option<VReg>,
    /// The rendered explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}[{}]", self.level, self.lint, self.section, self.index)?;
        if let Some(r) = self.register {
            write!(f, " {r}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The analyzer's verdict: every finding, ordered by section then
/// instruction index, plus the coverage counters saying how much of the
/// generated program the abstract interpreter actually evaluated.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisReport {
    pub(crate) findings: Vec<Finding>,
    /// Generated instructions in the program, counted recursively
    /// through `Guarded` bodies.
    pub(crate) insts_total: usize,
    /// Instructions the abstract interpreter evaluated in at least one
    /// scenario.
    pub(crate) insts_reached: usize,
}

impl AnalysisReport {
    /// All findings, ordered.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Generated instructions in the analyzed program (recursively
    /// through guard bodies).
    pub fn coverage_total(&self) -> usize {
        self.insts_total
    }

    /// Instructions the abstract interpreter evaluated in at least one
    /// scenario.
    pub fn coverage_reached(&self) -> usize {
        self.insts_reached
    }

    /// The `chunk-never-verified` counter: generated instructions no
    /// evaluated scenario ever reached (guard bodies whose condition
    /// held in no scenario, or a program whose every sampled trip count
    /// fell below the `ub > 3B` guard). A non-zero count means the
    /// lints above are silent about those instructions.
    pub fn chunk_never_verified(&self) -> usize {
        self.insts_total.saturating_sub(self.insts_reached)
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Warn)
            .count()
    }

    /// Whether the program passed (no deny-level findings; warnings do
    /// not fail an analysis).
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Human-readable multi-line rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        if self.findings.is_empty() {
            out.push_str("analysis clean: no findings\n");
        } else {
            out.push_str(&format!(
                "{} finding(s): {} deny, {} warn\n",
                self.findings.len(),
                self.deny_count(),
                self.warn_count()
            ));
        }
        if self.chunk_never_verified() > 0 {
            out.push_str(&format!(
                "warning: coverage {}/{} — {} generated instruction(s) never verified \
                 (no evaluated scenario reached them)\n",
                self.insts_reached,
                self.insts_total,
                self.chunk_never_verified()
            ));
        }
        out
    }

    /// Machine-readable JSON rendering (a single object with `deny`,
    /// `warn`, a `coverage` object and a `findings` array).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"deny\":{},\"warn\":{},\"coverage\":{{\"insts\":{},\"reached\":{},\"chunk_never_verified\":{}}},\"findings\":[",
            self.deny_count(),
            self.warn_count(),
            self.insts_total,
            self.insts_reached,
            self.chunk_never_verified()
        ));
        for (k, f) in self.findings.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":\"{}\",\"level\":\"{}\",\"section\":\"{}\",\"index\":{},\"register\":{},\"message\":\"{}\"}}",
                f.lint,
                f.level,
                f.section,
                f.index,
                match f.register {
                    Some(r) => format!("\"{r}\""),
                    None => "null".to_string(),
                },
                escape_json(&f.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_roundtrip() {
        for lint in Lint::ALL {
            assert_eq!(Lint::from_name(lint.name()), Some(lint));
            assert!(!lint.description().is_empty());
        }
        assert_eq!(Lint::from_name("bogus"), None);
    }

    #[test]
    fn level_parse_and_order() {
        assert_eq!("deny".parse::<Level>(), Ok(Level::Deny));
        assert_eq!("warn".parse::<Level>(), Ok(Level::Warn));
        assert_eq!("allow".parse::<Level>(), Ok(Level::Allow));
        assert!("loud".parse::<Level>().is_err());
        assert!(Level::Allow < Level::Warn && Level::Warn < Level::Deny);
    }

    #[test]
    fn report_renders_text_and_json() {
        let report = AnalysisReport {
            findings: vec![Finding {
                lint: Lint::RedundantShift,
                level: Level::Warn,
                section: Section::Body,
                index: 3,
                register: None,
                message: "shift by 0 is a \"no-op\"".to_string(),
            }],
            insts_total: 10,
            insts_reached: 8,
        };
        let text = report.render_text();
        assert!(text.contains("warn[redundant-shift] body[3]:"));
        assert!(text.contains("1 finding(s): 0 deny, 1 warn"));
        assert!(text.contains("coverage 8/10"));
        assert_eq!(report.chunk_never_verified(), 2);
        let json = report.render_json();
        assert!(json.contains("\"deny\":0"));
        assert!(json.contains("\"coverage\":{\"insts\":10,\"reached\":8,\"chunk_never_verified\":2}"));
        assert!(json.contains("\\\"no-op\\\""));
        assert!(json.contains("\"register\":null"));
        assert!(report.is_clean());

        let empty = AnalysisReport::default();
        assert!(empty.render_text().contains("analysis clean"));
        assert!(!empty.render_text().contains("coverage"));
        assert_eq!(
            empty.render_json(),
            "{\"deny\":0,\"warn\":0,\"coverage\":{\"insts\":0,\"reached\":0,\"chunk_never_verified\":0},\"findings\":[]}"
        );
    }
}
