//! The abstract domain: per-register, per-byte-lane symbolic stream
//! provenance.
//!
//! Each byte lane of each virtual register is mapped to the set of
//! *stream bytes* it may hold. A stream byte is `(array, r)`, meaning
//! "byte `base(array) + σ(array)·i·D + r` of memory at the section's
//! current induction value `i`". Keeping offsets relative to the moving
//! stream position is what lets one abstract body execution stand for
//! every steady-state iteration: stepping `i → i + B` is the uniform
//! `r → r − σ·B·D` rebase of every entry. (The relative coordinate is
//! well defined because `i` is always a multiple of `B`, so `σ·i·D` is
//! a multiple of `V` and chunk truncation commutes with it.)

use std::collections::BTreeSet;

/// Maximum provenance entries tracked per lane before widening to
/// [`Lane::Top`]. Real programs combine at most a handful of streams
/// per lane.
const MAX_PROV: usize = 8;

/// One possible origin of a byte: `(array index, relative byte offset)`.
pub(crate) type Prov = (u32, i64);

/// A small inline sorted set of provenance entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ProvSet {
    len: u8,
    items: [Prov; MAX_PROV],
}

impl ProvSet {
    pub(crate) fn empty() -> ProvSet {
        ProvSet {
            len: 0,
            items: [(0, 0); MAX_PROV],
        }
    }

    pub(crate) fn single(p: Prov) -> ProvSet {
        let mut s = ProvSet::empty();
        s.items[0] = p;
        s.len = 1;
        s
    }

    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = Prov> + '_ {
        self.items[..self.len as usize].iter().copied()
    }

    pub(crate) fn contains(&self, p: Prov) -> bool {
        self.items[..self.len as usize].contains(&p)
    }

    /// Inserts `p`, keeping the set sorted; `false` on capacity
    /// overflow (the caller widens to ⊤).
    pub(crate) fn insert(&mut self, p: Prov) -> bool {
        let n = self.len as usize;
        let pos = match self.items[..n].binary_search(&p) {
            Ok(_) => return true,
            Err(pos) => pos,
        };
        if n == MAX_PROV {
            return false;
        }
        self.items.copy_within(pos..n, pos + 1);
        self.items[pos] = p;
        self.len += 1;
        true
    }

    /// The union of both sets; `None` on capacity overflow.
    pub(crate) fn union(&self, other: &ProvSet) -> Option<ProvSet> {
        let mut out = *self;
        for p in other.iter() {
            if !out.insert(p) {
                return None;
            }
        }
        Some(out)
    }

    /// Maps every entry through `f`; `None` means the entry (and hence
    /// the set) becomes unrepresentable.
    pub(crate) fn map(&self, mut f: impl FnMut(Prov) -> Option<Prov>) -> Option<ProvSet> {
        let mut out = ProvSet::empty();
        for p in self.iter() {
            if !out.insert(f(p)?) {
                return None;
            }
        }
        Some(out)
    }
}

/// The abstract value of one byte lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lane {
    /// Never written in this execution.
    Undef,
    /// Could hold anything (analysis gave up on this lane).
    Top,
    /// Holds a combination of exactly these stream bytes. The empty set
    /// means pure loop-invariant data (splatted constants/parameters),
    /// which is a *known* value, not ⊤.
    Known(ProvSet),
}

impl Lane {
    pub(crate) fn known1(array: u32, r: i64) -> Lane {
        Lane::Known(ProvSet::single((array, r)))
    }

    /// The lane result of a lane-wise arithmetic combination: undef
    /// poisons, ⊤ dominates, otherwise the provenance union.
    pub(crate) fn combine(a: Lane, b: Lane) -> Lane {
        match (a, b) {
            (Lane::Undef, _) | (_, Lane::Undef) => Lane::Undef,
            (Lane::Top, _) | (_, Lane::Top) => Lane::Top,
            (Lane::Known(x), Lane::Known(y)) => match x.union(&y) {
                Some(s) => Lane::Known(s),
                None => Lane::Top,
            },
        }
    }
}

/// The abstract machine state: one [`Lane`] per register byte, plus
/// per-register taint sets tracking which load sites each register's
/// value flowed from (for the dead-load lint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AbsState {
    v: usize,
    lanes: Vec<Lane>,
    taints: Vec<BTreeSet<u32>>,
}

impl AbsState {
    pub(crate) fn new(nvregs: usize, v: usize) -> AbsState {
        AbsState {
            v,
            lanes: vec![Lane::Undef; nvregs * v],
            taints: vec![BTreeSet::new(); nvregs],
        }
    }

    pub(crate) fn lane(&self, reg: usize, t: usize) -> Lane {
        self.lanes[reg * self.v + t]
    }

    pub(crate) fn set_lane(&mut self, reg: usize, t: usize, lane: Lane) {
        self.lanes[reg * self.v + t] = lane;
    }

    pub(crate) fn taint(&self, reg: usize) -> &BTreeSet<u32> {
        &self.taints[reg]
    }

    pub(crate) fn set_taint(&mut self, reg: usize, taint: BTreeSet<u32>) {
        self.taints[reg] = taint;
    }

    pub(crate) fn taint_union(&self, a: usize, b: usize) -> BTreeSet<u32> {
        self.taints[a].union(&self.taints[b]).copied().collect()
    }

    pub(crate) fn copy_reg(&mut self, dst: usize, src: usize) {
        for t in 0..self.v {
            self.lanes[dst * self.v + t] = self.lanes[src * self.v + t];
        }
        self.taints[dst] = self.taints[src].clone();
    }

    /// Rebases every provenance entry from induction value `i` to
    /// `i + delta` (in elements): entry offsets shrink by
    /// `σ(array)·delta·D`.
    pub(crate) fn rebase(&mut self, delta: i64, sigma: &[Option<i64>], d: i64) {
        if delta == 0 {
            return;
        }
        for lane in &mut self.lanes {
            if let Lane::Known(s) = lane {
                let mapped = s.map(|(a, r)| {
                    let sg = sigma.get(a as usize).copied().flatten()?;
                    Some((a, r - sg * delta * d))
                });
                *lane = match mapped {
                    Some(s) => Lane::Known(s),
                    None => Lane::Top,
                };
            }
        }
    }

    /// Widens to ⊤ every lane that differs from `prev` (fixpoint
    /// acceleration).
    pub(crate) fn widen_from(&mut self, prev: &AbsState) {
        for (lane, old) in self.lanes.iter_mut().zip(prev.lanes.iter()) {
            if lane != old {
                *lane = Lane::Top;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prov_set_insert_union_overflow() {
        let mut s = ProvSet::single((1, 4));
        assert!(s.insert((0, 2)));
        assert!(s.insert((1, 4))); // duplicate is a no-op
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 2), (1, 4)]);
        assert!(s.contains((0, 2)) && !s.contains((2, 0)));

        for k in 0..6 {
            assert!(s.insert((3, k)));
        }
        assert_eq!(s.len(), 8);
        assert!(!s.insert((9, 9)), "capacity overflow must report");
        assert!(s.union(&ProvSet::single((9, 9))).is_none());
        assert!(s.union(&ProvSet::single((1, 4))).is_some());
    }

    #[test]
    fn lane_combine_lattice() {
        let k = Lane::known1(0, 4);
        assert_eq!(Lane::combine(Lane::Undef, k), Lane::Undef);
        assert_eq!(Lane::combine(k, Lane::Top), Lane::Top);
        let j = Lane::combine(k, Lane::known1(1, -8));
        match j {
            Lane::Known(s) => assert_eq!(s.len(), 2),
            other => panic!("expected union, got {other:?}"),
        }
        assert_eq!(Lane::combine(k, Lane::Known(ProvSet::empty())), k);
    }

    #[test]
    fn state_rebase_moves_entries() {
        let mut st = AbsState::new(1, 4);
        st.set_lane(0, 0, Lane::known1(0, 10));
        st.set_lane(0, 1, Lane::Top);
        st.rebase(4, &[Some(1)], 4);
        assert_eq!(st.lane(0, 0), Lane::known1(0, 10 - 16));
        assert_eq!(st.lane(0, 1), Lane::Top);
        // an entry whose array has no uniform stride widens
        let mut st = AbsState::new(1, 4);
        st.set_lane(0, 0, Lane::known1(0, 0));
        st.rebase(4, &[None], 4);
        assert_eq!(st.lane(0, 0), Lane::Top);
    }
}
