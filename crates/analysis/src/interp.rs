//! The abstract interpreter and the lints built on it.
//!
//! One analysis run evaluates the program under a family of concrete
//! *scenarios* (alignment assignments for runtime-aligned arrays ×
//! sample trip counts), because shift amounts, splice points and
//! epilogue guards are loop-invariant scalar expressions that only
//! become concrete given alignments and `ub`. Within one scenario the
//! steady state is still analyzed *symbolically in `i`*: the body's
//! abstract state is iterated to a fixpoint under the `i → i + B`
//! rebase, so one converged state stands for every steady iteration.

use crate::domain::{AbsState, Lane, ProvSet};
use crate::lint::{AnalysisReport, Finding, Level, Lint, Section};
use simdize_codegen::{Addr, ReuseMode, ScalarEnv, SimdProgram, VInst, VReg};
use simdize_ir::{AlignKind, ArrayId, TripCount, VectorShape};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Configuration for [`analyze_program`].
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    overrides: Vec<(Lint, Level)>,
    reuse_hint: Option<ReuseMode>,
    memnorm_hint: bool,
    max_align_combos: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            overrides: Vec::new(),
            reuse_hint: None,
            memnorm_hint: false,
            max_align_combos: 12,
        }
    }
}

impl AnalyzeOptions {
    /// Starts from the defaults (no hints, default lint levels).
    pub fn new() -> AnalyzeOptions {
        AnalyzeOptions::default()
    }

    /// Overrides the reporting level of one lint (`--lint name=level`).
    pub fn level(mut self, lint: Lint, level: Level) -> AnalyzeOptions {
        self.overrides.push((lint, level));
        self
    }

    /// Tells the analyzer which reuse scheme generated the program.
    /// The `chunk-loaded-twice` lint only applies to reuse-enabled code
    /// (§5's exactly-once guarantee); without a hint it stays silent.
    pub fn reuse(mut self, reuse: ReuseMode) -> AnalyzeOptions {
        self.reuse_hint = Some(reuse);
        self
    }

    /// Tells the analyzer whether memory normalization ran, enabling
    /// the stricter duplicate-chunk detection (MemNorm guarantees
    /// chunk-identical loads were merged).
    pub fn memnorm(mut self, on: bool) -> AnalyzeOptions {
        self.memnorm_hint = on;
        self
    }

    /// Caps the number of runtime-alignment combinations evaluated.
    pub fn align_combos(mut self, n: usize) -> AnalyzeOptions {
        self.max_align_combos = n.max(1);
        self
    }

    /// The effective level of `lint` after overrides.
    pub fn level_for(&self, lint: Lint) -> Level {
        self.overrides
            .iter()
            .rev()
            .find(|(l, _)| *l == lint)
            .map(|(_, lvl)| *lvl)
            .unwrap_or_else(|| lint.default_level())
    }
}

/// Runs the full static analysis over a generated program and returns
/// every finding.
///
/// The analysis is sound with respect to the scenarios it evaluates:
/// a lane it cannot track precisely widens to ⊤ and is exempted from
/// checks, so every reported `store-byte-mismatch`/`splice-clobber` is
/// a real provenance violation under some evaluated alignment/trip
/// assignment.
pub fn analyze_program(program: &SimdProgram, options: &AnalyzeOptions) -> AnalysisReport {
    let mut analyzer = Analyzer::new(program, options);
    analyzer.scan_redundant_shifts();
    analyzer.scan_chunk_loads();
    for env in analyzer.scenarios() {
        analyzer.run_scenario(&env);
    }
    analyzer.finalize_dead_loads();
    analyzer.report()
}

/// Per-source-statement facts the store check needs.
struct StmtInfo {
    reduction: bool,
    /// δ₀: the store's constant element offset.
    target_offset: i64,
    /// `(array, σ, δ)` for every load reference of the statement.
    loads: Vec<(u32, i64, i64)>,
}

/// One concrete evaluation scenario: alignments and trip count.
struct ScenEnv {
    ub: i64,
    betas: Vec<i64>,
    bases: Vec<u64>,
    shape: VectorShape,
}

impl ScalarEnv for ScenEnv {
    fn ub(&self) -> i64 {
        self.ub
    }

    fn base_of(&self, array: ArrayId) -> u64 {
        self.bases[array.index()]
    }

    fn shape(&self) -> VectorShape {
        self.shape
    }
}

/// A load site (one `vload` instruction, identified structurally).
struct SiteInfo {
    section: Section,
    path: Vec<usize>,
    reg: VReg,
    array: usize,
}

/// How a store byte relates to the statement's target region.
#[derive(Clone, Copy, PartialEq)]
enum ByteClass {
    /// Must hold the source-stream bytes of its element (C.2/C.3).
    New,
    /// Must preserve the original memory byte exactly.
    Old,
    /// May hold either (covered by an adjacent steady iteration or a
    /// strided gather gap merged from the old chunk).
    Lenient,
}

struct Analyzer<'a> {
    prog: &'a SimdProgram,
    opts: &'a AnalyzeOptions,
    v: i64,
    d: i64,
    b: i64,
    nvregs: usize,
    /// Uniform per-array stride σ from the source refs (`None` when the
    /// array is referenced with mixed strides — its entries widen).
    sigma: Vec<Option<i64>>,
    /// Source statement storing each array, if any.
    store_stmt: Vec<Option<usize>>,
    stmts: Vec<StmtInfo>,
    /// Total source load references per array (the §5 exactly-once
    /// budget for steady-state `vload`s).
    load_ref_count: Vec<usize>,
    findings: BTreeMap<(Lint, Section, Vec<usize>, u32), Finding>,
    sites: Vec<SiteInfo>,
    site_ids: HashMap<(Section, Vec<usize>), u32>,
    live: BTreeSet<u32>,
    /// Instructions (by section and guard-nested path) the interpreter
    /// evaluated in at least one scenario — the coverage numerator.
    reached: BTreeSet<(Section, Vec<usize>)>,
}

impl<'a> Analyzer<'a> {
    fn new(prog: &'a SimdProgram, opts: &'a AnalyzeOptions) -> Analyzer<'a> {
        let source = prog.source();
        let n = source.arrays().len();
        let mut stride_of: Vec<Option<i64>> = vec![None; n];
        let mut conflict = vec![false; n];
        for r in source.all_refs() {
            let idx = r.array.index();
            let s = r.stride as i64;
            match stride_of[idx] {
                None => stride_of[idx] = Some(s),
                Some(prev) if prev != s => conflict[idx] = true,
                Some(_) => {}
            }
        }
        let sigma: Vec<Option<i64>> = stride_of
            .iter()
            .zip(&conflict)
            .map(|(s, c)| if *c { None } else { *s })
            .collect();

        let mut store_stmt = vec![None; n];
        let mut load_ref_count = vec![0usize; n];
        let mut stmts = Vec::new();
        for (si, stmt) in source.stmts().iter().enumerate() {
            store_stmt[stmt.target.array.index()] = Some(si);
            let loads: Vec<(u32, i64, i64)> = stmt
                .rhs
                .loads()
                .iter()
                .map(|r| (r.array.index() as u32, r.stride as i64, r.offset))
                .collect();
            for &(a, _, _) in &loads {
                load_ref_count[a as usize] += 1;
            }
            stmts.push(StmtInfo {
                reduction: stmt.reduction.is_some(),
                target_offset: stmt.target.offset,
                loads,
            });
        }

        Analyzer {
            prog,
            opts,
            v: prog.shape().bytes() as i64,
            d: prog.elem().size() as i64,
            b: prog.block() as i64,
            nvregs: prog.vreg_count() as usize,
            sigma,
            store_stmt,
            stmts,
            load_ref_count,
            findings: BTreeMap::new(),
            sites: Vec::new(),
            site_ids: HashMap::new(),
            live: BTreeSet::new(),
            reached: BTreeSet::new(),
        }
    }

    fn array_name(&self, idx: usize) -> String {
        self.prog
            .source()
            .arrays()
            .get(idx)
            .map(|a| a.name().to_string())
            .unwrap_or_else(|| format!("arr{idx}"))
    }

    fn render_addr(&self, addr: Addr) -> String {
        let name = self.array_name(addr.array.index());
        match addr.scale {
            0 => format!("{name}[{}]", addr.elem),
            1 if addr.elem == 0 => format!("{name}[i]"),
            1 if addr.elem > 0 => format!("{name}[i+{}]", addr.elem),
            1 => format!("{name}[i{}]", addr.elem),
            s => format!("{name}[{s}*i+{}]", addr.elem),
        }
    }

    fn render_lane(&self, lane: Lane) -> String {
        match lane {
            Lane::Undef => "undefined data".to_string(),
            Lane::Top => "untracked data".to_string(),
            Lane::Known(s) if s.is_empty() => "loop-invariant (splat) data".to_string(),
            Lane::Known(s) => self.render_set(&s),
        }
    }

    fn render_set(&self, s: &ProvSet) -> String {
        let parts: Vec<String> = s
            .iter()
            .map(|(a, r)| format!("{}[{r:+}B]", self.array_name(a as usize)))
            .collect();
        parts.join("|")
    }

    fn emit(
        &mut self,
        lint: Lint,
        sec: Section,
        path: &[usize],
        register: Option<VReg>,
        extra: u32,
        message: String,
    ) {
        let level = self.opts.level_for(lint);
        if level == Level::Allow {
            return;
        }
        let index = path.first().copied().unwrap_or(0);
        self.findings
            .entry((lint, sec, path.to_vec(), extra))
            .or_insert(Finding {
                lint,
                level,
                section: sec,
                index,
                register,
                message,
            });
    }

    fn report(self) -> AnalysisReport {
        let prog = self.prog;
        let insts_total = count_insts(prog.prologue())
            + count_insts(prog.body())
            + prog.body_pair().map_or(0, count_insts)
            + count_insts(prog.epilogue());
        let insts_reached = self.reached.len().min(insts_total);
        let mut findings: Vec<Finding> = self.findings.into_values().collect();
        findings.sort_by(|a, b| {
            (a.section, a.index, a.lint)
                .cmp(&(b.section, b.index, b.lint))
                .then_with(|| a.message.cmp(&b.message))
        });
        AnalysisReport {
            findings,
            insts_total,
            insts_reached,
        }
    }

    // ---- scenario construction -------------------------------------

    fn scenarios(&self) -> Vec<ScenEnv> {
        let source = self.prog.source();
        let arrays = source.arrays();
        let shape = self.prog.shape();
        let (v, d, b) = (self.v, self.d, self.b);

        let runtime: Vec<usize> = arrays
            .iter()
            .enumerate()
            .filter(|(_, a)| a.align() == AlignKind::Runtime)
            .map(|(i, _)| i)
            .collect();
        let choices = (v / d).max(1) as usize;

        // Alignment combinations for the runtime arrays: all diagonals
        // (every array at the same offset) plus mixed counter-based
        // combinations up to the cap.
        let mut combos: BTreeSet<Vec<i64>> = BTreeSet::new();
        if runtime.is_empty() {
            combos.insert(Vec::new());
        } else {
            for m in 0..choices {
                combos.insert(vec![m as i64 * d; runtime.len()]);
            }
            let total = choices.checked_pow(runtime.len() as u32).unwrap_or(usize::MAX);
            for c in 0..total.min(self.opts.max_align_combos) {
                let mut digits = Vec::with_capacity(runtime.len());
                let mut rest = c;
                for _ in 0..runtime.len() {
                    digits.push((rest % choices) as i64 * d);
                    rest /= choices;
                }
                combos.insert(digits);
            }
        }

        let ubs: Vec<i64> = match source.trip() {
            TripCount::Known(n) => vec![n as i64],
            TripCount::Runtime => {
                let g = self.prog.guard_min_trip() as i64;
                let mut u = vec![g + 1, g + 2, g + b - 1, g + b, g + 2 * b + 3];
                u.retain(|&x| x > g);
                u.sort_unstable();
                u.dedup();
                u
            }
        };

        let mut envs = Vec::new();
        for combo in &combos {
            let betas: Vec<i64> = arrays
                .iter()
                .enumerate()
                .map(|(i, a)| match a.align().known_offset(shape) {
                    Some(off) => off as i64,
                    None => {
                        let pos = runtime.iter().position(|&r| r == i).unwrap();
                        combo[pos]
                    }
                })
                .collect();
            // Fabricated bases realizing each beta: far apart, at a
            // multiple of the largest supported V plus the offset.
            let bases: Vec<u64> = betas
                .iter()
                .enumerate()
                .map(|(i, &beta)| 0x10_0000 + i as u64 * 0x1_0000 + beta as u64)
                .collect();
            for &ub in &ubs {
                envs.push(ScenEnv {
                    ub,
                    betas: betas.clone(),
                    bases: bases.clone(),
                    shape,
                });
            }
        }
        envs
    }

    // ---- one scenario ----------------------------------------------

    fn run_scenario(&mut self, env: &ScenEnv) {
        let prog = self.prog;
        if env.ub <= prog.guard_min_trip() as i64 {
            return; // the guard routes this trip count to the scalar loop
        }
        let mut path = Vec::new();
        let mut state = AbsState::new(self.nvregs, self.v as usize);
        self.eval_insts(&mut state, prog.prologue(), Section::Prologue, env, true, Some(0), &mut path);

        let lb = prog.lower_bound() as i64;
        state.rebase(lb, &self.sigma, self.d);

        // Simulate the exact iteration schedule to learn the epilogue's
        // induction value and whether any steady iteration runs.
        let upper = prog.upper_bound().eval(env);
        let b = self.b;
        let mut i = lb;
        let mut steady = 0u64;
        if prog.body_pair().is_some() {
            while i + b < upper {
                i += 2 * b;
                steady += 1;
            }
        }
        while i < upper {
            i += b;
            steady += 1;
        }
        let i_epi = i;

        let converged = self.fixpoint(&state, prog.body(), b, Section::Body, env);
        let mut check_state = converged.clone();
        self.eval_insts(&mut check_state, prog.body(), Section::Body, env, true, None, &mut path);

        if let Some(pair) = prog.body_pair() {
            let conv_pair = self.fixpoint(&state, pair, 2 * b, Section::BodyPair, env);
            let mut pair_state = conv_pair;
            self.eval_insts(&mut pair_state, pair, Section::BodyPair, env, true, None, &mut path);
            // Values the pair computes can first reach memory in the
            // epilogue (reduction accumulators are stored only there):
            // replay the epilogue from the pair's state with checks off
            // so those load sites register as live and don't report as
            // dead. The checked epilogue pass below runs from the
            // body's converged state, which covers the same stores.
            pair_state.rebase(2 * b, &self.sigma, self.d);
            self.eval_insts(
                &mut pair_state,
                prog.epilogue(),
                Section::Epilogue,
                env,
                false,
                Some(i_epi),
                &mut path,
            );
        }

        // With zero steady iterations the epilogue sees the prologue's
        // values directly (possible only when guard_min_trip is 0).
        let mut epi_state = if steady > 0 { converged } else { state };
        self.eval_insts(
            &mut epi_state,
            prog.epilogue(),
            Section::Epilogue,
            env,
            true,
            Some(i_epi),
            &mut path,
        );
    }

    /// Iterates `state → rebase(eval(state))` until stable. Lanes that
    /// fail to stabilize quickly widen to ⊤ (and are then exempt from
    /// checks), so the converged state soundly covers every steady
    /// iteration.
    fn fixpoint(
        &mut self,
        start: &AbsState,
        insts: &[VInst],
        step: i64,
        sec: Section,
        env: &ScenEnv,
    ) -> AbsState {
        let mut current = start.clone();
        let mut path = Vec::new();
        for iter in 0..24 {
            let mut next = current.clone();
            self.eval_insts(&mut next, insts, sec, env, false, None, &mut path);
            next.rebase(step, &self.sigma, self.d);
            if next == current {
                return current;
            }
            if iter >= 8 {
                next.widen_from(&current);
            }
            current = next;
        }
        current
    }

    // ---- transfer functions ----------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn eval_insts(
        &mut self,
        state: &mut AbsState,
        insts: &[VInst],
        sec: Section,
        env: &ScenEnv,
        check: bool,
        i_val: Option<i64>,
        path: &mut Vec<usize>,
    ) {
        for (idx, inst) in insts.iter().enumerate() {
            path.push(idx);
            self.eval_inst(state, inst, sec, env, check, i_val, path);
            path.pop();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_inst(
        &mut self,
        state: &mut AbsState,
        inst: &VInst,
        sec: Section,
        env: &ScenEnv,
        check: bool,
        i_val: Option<i64>,
        path: &mut Vec<usize>,
    ) {
        self.reached.insert((sec, path.clone()));
        let v = self.v as usize;
        match inst {
            VInst::LoadA { dst, addr } | VInst::LoadU { dst, addr } => {
                let truncating = matches!(inst, VInst::LoadA { .. });
                let site = self.site_for(sec, path, *dst, addr.array.index());
                let r = dst.index();
                match self.stream_base(addr, env, truncating) {
                    Some((arr, rc)) => {
                        for t in 0..v {
                            state.set_lane(r, t, Lane::known1(arr, rc + t as i64));
                        }
                    }
                    None => {
                        for t in 0..v {
                            state.set_lane(r, t, Lane::Top);
                        }
                    }
                }
                state.set_taint(r, BTreeSet::from([site]));
            }
            VInst::StoreA { addr, src } | VInst::StoreU { addr, src } => {
                let truncating = matches!(inst, VInst::StoreA { .. });
                for &s in state.taint(src.index()) {
                    self.live.insert(s);
                }
                if check {
                    self.check_store(state, *addr, *src, truncating, sec, env, i_val, path);
                }
            }
            VInst::ShiftPair { dst, a, b, amt } => {
                let m = amt.eval(env);
                let lanes: Vec<Lane> = (0..v)
                    .map(|t| {
                        if !(0..=self.v).contains(&m) {
                            return Lane::Top;
                        }
                        let idx = m as usize + t;
                        if idx < v {
                            state.lane(a.index(), idx)
                        } else {
                            state.lane(b.index(), idx - v)
                        }
                    })
                    .collect();
                let taint = state.taint_union(a.index(), b.index());
                for (t, lane) in lanes.into_iter().enumerate() {
                    state.set_lane(dst.index(), t, lane);
                }
                state.set_taint(dst.index(), taint);
            }
            VInst::Splice { dst, a, b, point } => {
                let p = point.eval(env);
                let lanes: Vec<Lane> = (0..v)
                    .map(|t| {
                        if !(0..=self.v).contains(&p) {
                            Lane::Top
                        } else if (t as i64) < p {
                            state.lane(a.index(), t)
                        } else {
                            state.lane(b.index(), t)
                        }
                    })
                    .collect();
                let taint = state.taint_union(a.index(), b.index());
                for (t, lane) in lanes.into_iter().enumerate() {
                    state.set_lane(dst.index(), t, lane);
                }
                state.set_taint(dst.index(), taint);
            }
            VInst::Perm { dst, a, b, pattern } => {
                let lanes: Vec<Lane> = (0..v)
                    .map(|t| match pattern.get(t).map(|&e| e as usize) {
                        Some(e) if e < v => state.lane(a.index(), e),
                        Some(e) if e < 2 * v => state.lane(b.index(), e - v),
                        _ => Lane::Top,
                    })
                    .collect();
                let taint = state.taint_union(a.index(), b.index());
                for (t, lane) in lanes.into_iter().enumerate() {
                    state.set_lane(dst.index(), t, lane);
                }
                state.set_taint(dst.index(), taint);
            }
            VInst::SplatConst { dst, .. } | VInst::SplatParam { dst, .. } => {
                for t in 0..v {
                    state.set_lane(dst.index(), t, Lane::Known(ProvSet::empty()));
                }
                state.set_taint(dst.index(), BTreeSet::new());
            }
            VInst::Bin { dst, a, b, .. } => {
                let lanes: Vec<Lane> = (0..v)
                    .map(|t| Lane::combine(state.lane(a.index(), t), state.lane(b.index(), t)))
                    .collect();
                let taint = state.taint_union(a.index(), b.index());
                for (t, lane) in lanes.into_iter().enumerate() {
                    state.set_lane(dst.index(), t, lane);
                }
                state.set_taint(dst.index(), taint);
            }
            VInst::Un { dst, a, .. } => {
                state.copy_reg(dst.index(), a.index());
            }
            VInst::Copy { dst, src } => {
                state.copy_reg(dst.index(), src.index());
            }
            VInst::Guarded { cond, body } => {
                if cond.eval(env) {
                    for (j, inner) in body.iter().enumerate() {
                        path.push(j);
                        self.eval_inst(state, inner, sec, env, check, i_val, path);
                        path.pop();
                    }
                }
            }
        }
    }

    /// The stream byte held by lane 0 of a load of `addr`, or `None`
    /// when the array's stride is not uniform (lanes widen to ⊤).
    fn stream_base(&self, addr: &Addr, env: &ScenEnv, truncating: bool) -> Option<(u32, i64)> {
        let arr = addr.array.index();
        if self.sigma.get(arr) != Some(&Some(addr.scale)) {
            return None;
        }
        let rc = if truncating {
            addr.elem * self.d - (env.betas[arr] + addr.elem * self.d).rem_euclid(self.v)
        } else {
            addr.elem * self.d
        };
        Some((arr as u32, rc))
    }

    fn site_for(&mut self, sec: Section, path: &[usize], reg: VReg, array: usize) -> u32 {
        if let Some(&id) = self.site_ids.get(&(sec, path.to_vec())) {
            return id;
        }
        let id = self.sites.len() as u32;
        self.site_ids.insert((sec, path.to_vec()), id);
        self.sites.push(SiteInfo {
            section: sec,
            path: path.to_vec(),
            reg,
            array,
        });
        id
    }

    // ---- the store-byte check (C.2/C.3 + splice windows) -----------

    #[allow(clippy::too_many_arguments)]
    fn check_store(
        &mut self,
        state: &AbsState,
        addr: Addr,
        src: VReg,
        truncating: bool,
        sec: Section,
        env: &ScenEnv,
        i_val: Option<i64>,
        path: &[usize],
    ) {
        let arr = addr.array.index();
        let Some(stmt_idx) = self.store_stmt.get(arr).copied().flatten() else {
            let rendered = self.render_addr(addr);
            self.emit(
                Lint::StoreByteMismatch,
                sec,
                path,
                Some(src),
                arr as u32,
                format!("store to {rendered}, but `{}` is not the target of any source statement", self.array_name(arr)),
            );
            return;
        };
        if self.stmts[stmt_idx].reduction {
            return; // accumulator traffic is not element-indexed
        }
        let Some(sigma) = self.sigma[arr] else { return };
        if sigma != addr.scale {
            return;
        }
        let (v, d, b) = (self.v, self.d, self.b);
        let rs = if truncating {
            addr.elem * d - (env.betas[arr] + addr.elem * d).rem_euclid(v)
        } else {
            addr.elem * d
        };
        let delta0 = self.stmts[stmt_idx].target_offset;
        let new_hi = if sec == Section::BodyPair { 2 * b } else { b };

        for t in 0..v {
            let lane = state.lane(src.index(), t as usize);
            if lane == Lane::Top {
                continue;
            }
            let r = rs + t;
            let e = r.div_euclid(d);
            let j = r.rem_euclid(d);
            let diff = e - delta0;
            let k = if diff.rem_euclid(sigma) == 0 {
                Some(diff.div_euclid(sigma))
            } else {
                None // a gap byte of a strided scatter
            };
            let class = match (k, sec, i_val) {
                (None, Section::Prologue | Section::Epilogue, _) => ByteClass::Old,
                (None, _, _) => ByteClass::Old,
                (Some(k), Section::Prologue, _) if k < 0 => ByteClass::Old,
                (Some(k), Section::Prologue, _) if k < new_hi => ByteClass::New,
                (Some(_), Section::Prologue, _) => ByteClass::Lenient,
                (Some(k), Section::Epilogue, Some(i)) if k >= 0 && i + k >= env.ub => ByteClass::Old,
                (Some(k), Section::Epilogue, Some(_)) if k >= 0 => ByteClass::New,
                (Some(_), Section::Epilogue, _) => ByteClass::Lenient,
                (Some(k), _, _) if (0..new_hi).contains(&k) => ByteClass::New,
                (Some(_), _, _) => ByteClass::Lenient,
            };

            // The stream bytes the source loop computes for element
            // `i + k`, expressed relative to each loaded stream.
            let expected: Vec<(u32, i64)> = match k {
                Some(k) => self.stmts[stmt_idx]
                    .loads
                    .iter()
                    .map(|&(a, sg, dl)| (a, (sg * k + dl) * d + j))
                    .collect(),
                None => Vec::new(),
            };
            let identity = (arr as u32, r);

            let violation = match (class, lane) {
                (_, Lane::Top) => None,
                (ByteClass::New, Lane::Undef) | (ByteClass::Old, Lane::Undef) | (ByteClass::Lenient, Lane::Undef) => {
                    Some("holds undefined data".to_string())
                }
                (ByteClass::New, Lane::Known(s)) => {
                    let ok = (expected.is_empty() || !s.is_empty())
                        && s.iter().all(|p| expected.contains(&p));
                    if ok {
                        None
                    } else {
                        Some(format!(
                            "must come from the source stream bytes {{{}}} but holds {}",
                            self.render_expected(&expected),
                            self.render_lane(lane)
                        ))
                    }
                }
                (ByteClass::Old, Lane::Known(s)) => {
                    if s.len() == 1 && s.contains(identity) {
                        None
                    } else {
                        Some(format!(
                            "lies outside the store's target region but holds {} instead of the original memory byte",
                            self.render_lane(lane)
                        ))
                    }
                }
                (ByteClass::Lenient, Lane::Known(s)) => {
                    let ok = s.iter().all(|p| p == identity || expected.contains(&p));
                    if ok {
                        None
                    } else {
                        Some(format!(
                            "holds {} — neither the element's stream bytes nor the original memory",
                            self.render_lane(lane)
                        ))
                    }
                }
            };

            if let Some(why) = violation {
                let lint = if class == ByteClass::Old
                    && matches!(sec, Section::Prologue | Section::Epilogue)
                {
                    Lint::SpliceClobber
                } else {
                    Lint::StoreByteMismatch
                };
                let op = if truncating { "vstore" } else { "vstoreu" };
                let rendered = self.render_addr(addr);
                let elem_desc = match (k, i_val) {
                    (Some(k), Some(i)) => format!("element i={}", i + k),
                    (Some(k), None) => format!("element i{k:+}"),
                    (None, _) => "a gap byte".to_string(),
                };
                self.emit(
                    lint,
                    sec,
                    path,
                    Some(src),
                    arr as u32,
                    format!("byte {t} of {op} {rendered} ({elem_desc}) {why}"),
                );
                return; // one diagnostic per store is enough
            }
        }
    }

    fn render_expected(&self, expected: &[(u32, i64)]) -> String {
        if expected.is_empty() {
            return "(none: invariant right-hand side)".to_string();
        }
        let parts: Vec<String> = expected
            .iter()
            .map(|&(a, r)| format!("{}[{r:+}B]", self.array_name(a as usize)))
            .collect();
        parts.join("|")
    }

    // ---- static lints ----------------------------------------------

    fn scan_redundant_shifts(&mut self) {
        let prog = self.prog;
        let mut sections: Vec<(Section, &[VInst])> = vec![
            (Section::Prologue, prog.prologue()),
            (Section::Body, prog.body()),
            (Section::Epilogue, prog.epilogue()),
        ];
        if let Some(pair) = prog.body_pair() {
            sections.push((Section::BodyPair, pair));
        }
        for (sec, insts) in sections {
            let mut rotations: HashMap<VReg, i64> = HashMap::new();
            for (idx, inst) in insts.iter().enumerate() {
                if let VInst::ShiftPair { dst, a, b, amt } = inst {
                    if let Some(c) = amt.as_const() {
                        if c == 0 || c == self.v {
                            let which = if c == 0 { *a } else { *b };
                            self.emit(
                                Lint::RedundantShift,
                                sec,
                                &[idx],
                                Some(*dst),
                                0,
                                format!(
                                    "vshiftpair({a}, {b}, {c}) is a no-op: it selects {which} unchanged"
                                ),
                            );
                        } else if a == b {
                            if let Some(&prev) = rotations.get(a) {
                                self.emit(
                                    Lint::RedundantShift,
                                    sec,
                                    &[idx],
                                    Some(*dst),
                                    0,
                                    format!(
                                        "rotation by {c} of {a}, itself a rotation by {prev}: fold into one vshiftpair by {}",
                                        (prev + c).rem_euclid(self.v)
                                    ),
                                );
                            }
                            rotations.insert(*dst, c);
                        }
                    }
                }
            }
        }
    }

    fn scan_chunk_loads(&mut self) {
        let prog = self.prog;
        match self.opts.reuse_hint {
            Some(ReuseMode::SoftwarePipeline) | Some(ReuseMode::PredictiveCommoning) => {}
            _ => return, // exactly-once only holds for reuse-enabled code
        }
        if self.stmts.iter().any(|s| s.reduction) {
            // Reduction trees defeat predictive commoning's pattern
            // matching; the exactly-once budget does not apply.
            return;
        }
        let mut sections: Vec<(Section, &[VInst], usize)> = vec![(Section::Body, prog.body(), 1)];
        if let Some(pair) = prog.body_pair() {
            sections.push((Section::BodyPair, pair, 2));
        }
        // The count budget is a construction guarantee of the software
        // pipeline only: it carries one register per stream, and LVN
        // afterwards can only remove loads. Predictive commoning starts
        // from the naive two-load form and commons by pattern matching,
        // which cross-stream MemNorm CSE legitimately defeats (two
        // streams sharing a chunk leave the pass nothing to rotate), so
        // for `pc` only the duplicate-chunk check below applies.
        let budget_sections: &[(Section, &[VInst], usize)] =
            if self.opts.reuse_hint == Some(ReuseMode::SoftwarePipeline) {
                &sections
            } else {
                &[]
            };
        for &(sec, insts, factor) in budget_sections {
            let mut counts: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
            for (idx, inst) in insts.iter().enumerate() {
                if let VInst::LoadA { addr, .. } = inst {
                    let e = counts.entry(addr.array.index()).or_insert((0, idx));
                    e.0 += 1;
                }
            }
            for (&arr, &(count, first)) in &counts {
                let budget = factor * self.load_ref_count.get(arr).copied().unwrap_or(0);
                if count > budget {
                    self.emit(
                        Lint::ChunkLoadedTwice,
                        sec,
                        &[first],
                        None,
                        arr as u32,
                        format!(
                            "steady state issues {count} vload(s) of `{}` against a reuse budget of {budget} — \
                             a pipelined static stream must load each chunk exactly once (§5)",
                            self.array_name(arr)
                        ),
                    );
                }
            }
        }
        if self.opts.memnorm_hint {
            // With MemNorm the generator guarantees chunk-identical
            // loads were merged, so a duplicate chunk among compile-time
            // alignments is always a defect — in the primary body. The
            // unrolled pair is assembled *after* LVN, so its two halves
            // may legitimately each load a chunk the other also touches
            // (e.g. body streams at +16B and +32B overlap at +32B once
            // the second half advances by one block); only the
            // per-section count budget above applies there.
            let shape = prog.shape();
            for &(sec, insts, _) in sections.iter().filter(|s| s.0 == Section::Body) {
                let mut seen: HashMap<(usize, i64), usize> = HashMap::new();
                for (idx, inst) in insts.iter().enumerate() {
                    if let VInst::LoadA { addr, dst } = inst {
                        let arr = addr.array.index();
                        let known = prog
                            .source()
                            .arrays()
                            .get(arr)
                            .and_then(|a| a.align().known_offset(shape));
                        let (Some(beta), Some(sg)) = (known, self.sigma.get(arr).copied().flatten())
                        else {
                            continue;
                        };
                        if sg != addr.scale {
                            continue;
                        }
                        let rc = addr.elem * self.d
                            - (beta as i64 + addr.elem * self.d).rem_euclid(self.v);
                        if let Some(&first) = seen.get(&(arr, rc)) {
                            self.emit(
                                Lint::ChunkLoadedTwice,
                                sec,
                                &[idx],
                                Some(*dst),
                                arr as u32,
                                format!(
                                    "vload reloads the chunk at stream offset {rc:+}B of `{}` already loaded at {sec}[{first}]",
                                    self.array_name(arr)
                                ),
                            );
                        } else {
                            seen.insert((arr, rc), idx);
                        }
                    }
                }
            }
        }
    }

    fn finalize_dead_loads(&mut self) {
        for id in 0..self.sites.len() {
            if self.live.contains(&(id as u32)) {
                continue;
            }
            let (section, path, reg, array) = {
                let s = &self.sites[id];
                (s.section, s.path.clone(), s.reg, s.array)
            };
            let name = self.array_name(array);
            self.emit(
                Lint::DeadLoad,
                section,
                &path,
                Some(reg),
                array as u32,
                format!("vload of `{name}` into {reg} never reaches any store in any analyzed scenario"),
            );
        }
    }
}

/// Counts generated instructions recursively through `Guarded` bodies —
/// the denominator of the `chunk-never-verified` coverage counter.
fn count_insts(insts: &[VInst]) -> usize {
    insts
        .iter()
        .map(|i| match i {
            VInst::Guarded { body, .. } => 1 + count_insts(body),
            _ => 1,
        })
        .sum()
}
