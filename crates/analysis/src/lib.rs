//! `simdize-analysis` — the static analysis tier for generated vector
//! programs.
//!
//! The paper's validity argument (constraints (C.2)/(C.3) of §3, the
//! splice windows of §4.2, and the §5 exactly-once chunk guarantee) is
//! stated about the *generated* code, but the rest of the workspace
//! only checks it dynamically, by differential execution. This crate
//! proves the properties statically, the way a production compiler
//! validates its own output after every pass:
//!
//! * an **abstract interpreter** over the VIR tracks, per register
//!   byte lane, the symbolic stream byte it holds —
//!   `(array, σ·i·D + r)` relative to the moving stream position —
//!   through truncating `vload`s (modeled exactly), `vshiftpair`,
//!   `vsplice`, `vperm`, splats and lane-wise arithmetic (provenance
//!   join);
//! * the steady state is analyzed once, symbolically in `i`, by
//!   iterating the body's abstract state to a fixpoint under the
//!   `i → i + B` rebase;
//! * loop-invariant scalars (runtime alignments, `ub`) are concretized
//!   over a family of scenarios so shift amounts and epilogue guards
//!   evaluate;
//! * a **lint registry** ([`Lint`]) reports violations with
//!   configurable severities and structured diagnostics.
//!
//! ```
//! use simdize_analysis::{analyze_program, AnalyzeOptions};
//! use simdize_codegen::{generate, CodegenOptions, ReuseMode};
//! use simdize_ir::{parse_program, VectorShape};
//! use simdize_reorg::{Policy, ReorgGraph};
//!
//! let p = parse_program(
//!     "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
//!      for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
//! )?;
//! let graph = ReorgGraph::build(&p, VectorShape::V16)?.with_policy(Policy::Zero)?;
//! let program = generate(&graph, &CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline))?;
//! let report = analyze_program(
//!     &program,
//!     &AnalyzeOptions::new().reuse(ReuseMode::SoftwarePipeline).memnorm(true),
//! );
//! assert!(report.is_clean(), "{}", report.render_text());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod interp;
mod lint;

pub use interp::{analyze_program, AnalyzeOptions};
pub use lint::{AnalysisReport, Finding, Level, Lint, Section};

use std::error::Error;
use std::fmt;

/// The post-codegen analysis gate rejected a program: at least one
/// deny-level finding. Carries the full report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisFailed {
    report: AnalysisReport,
}

impl AnalysisFailed {
    /// Wraps a failing report.
    pub fn new(report: AnalysisReport) -> AnalysisFailed {
        AnalysisFailed { report }
    }

    /// The underlying report.
    pub fn report(&self) -> &AnalysisReport {
        &self.report
    }
}

impl fmt::Display for AnalysisFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "static analysis found {} deny-level finding(s):\n{}",
            self.report.deny_count(),
            self.report.render_text()
        )
    }
}

impl Error for AnalysisFailed {}
