//! The explain driver: run the full pipeline with tracing enabled and
//! assemble an [`ExplainReport`].

use crate::accounting::{account, Accounting};
use crate::backlink::{annotate, AnnotatedSection};
use crate::decision::Decisions;
use simdize_codegen::{
    generate_strided, generate_traced, strided_model_opd, CodegenOptions, CodegenTrace, ReuseMode,
    SimdProgram,
};
use simdize_engine::CompiledKernel;
use simdize_ir::{parse_program, LoopProgram, VectorShape};
use simdize_reorg::{Policy, PolicyError, ReorgGraph};
use simdize_vm::{run_differential, DiffConfig, MemoryImage, RunInput, RunStats};
use simdize_workloads::{lower_bound_parts, LowerBound};
use std::error::Error;

/// Errors from the explain pipeline (parse, graph construction, code
/// generation, execution, verification).
///
/// Note that an *inapplicable policy* is not an error: it produces an
/// [`ExplainReport::Inapplicable`] page explaining why (§4.4), so a
/// docs generator can cover every loop × policy combination.
pub type ExplainError = Box<dyn Error>;

/// Configures and runs the explainable-simdization pipeline.
#[derive(Debug, Clone)]
pub struct Explainer {
    policy: Option<Policy>,
    shape: VectorShape,
    reuse: ReuseMode,
    seed: u64,
    ub: u64,
    params: Vec<i64>,
}

impl Default for Explainer {
    fn default() -> Explainer {
        Explainer {
            policy: None,
            shape: VectorShape::V16,
            reuse: ReuseMode::SoftwarePipeline,
            seed: 2004,
            ub: 1000,
            params: Vec::new(),
        }
    }
}

/// What the explained loop was compiled as.
#[derive(Debug)]
pub enum ExplainReport {
    /// The standard stream-simdization path, fully traced.
    Stream(Box<StreamReport>),
    /// The requested policy cannot apply to this loop; the report
    /// explains why instead of failing.
    Inapplicable(InapplicableReport),
    /// A non-unit-stride loop compiled by the §7 gather/scatter
    /// extension, which bypasses the stream placement policies.
    Strided(Box<StridedReport>),
}

/// Loop-level metadata shared by all report forms.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// The loop in source syntax.
    pub source: String,
    /// `arrN` id → declared name, in declaration order.
    pub array_names: Vec<String>,
    /// The policy that was (or would have been) used.
    pub policy: Policy,
    /// Whether the policy was forced or chosen automatically (§4.4).
    pub policy_forced: bool,
    /// Target vector shape.
    pub shape: VectorShape,
    /// Blocking factor `B`.
    pub block: u32,
    /// Memory-image seed of the measured run.
    pub seed: u64,
    /// Trip count of the measured run.
    pub ub: u64,
}

/// The full decision-trace report of a stream-simdized loop.
#[derive(Debug)]
pub struct StreamReport {
    /// Loop metadata.
    pub info: LoopInfo,
    /// The placed reorganization graph, rendered.
    pub graph: String,
    /// `vshiftstream` nodes in the placed graph.
    pub shift_count: usize,
    /// Every decision of the three phases.
    pub decisions: Decisions,
    /// The generated program.
    pub program: SimdProgram,
    /// The program listing with per-instruction decision links.
    pub sections: Vec<AnnotatedSection>,
    /// OPD accounting against the §5.3 bound.
    pub accounting: Accounting,
    /// §5.3 per-iteration lower bound.
    pub lower_bound: LowerBound,
    /// Measured dynamic counts (interpreter == engine).
    pub stats: RunStats,
    /// Whether the simdized run was byte-identical to the scalar
    /// oracle.
    pub verified: bool,
    /// Speedup over the idealistic scalar loop.
    pub speedup: f64,
    /// Whether the native engine reproduced the interpreter's stats
    /// exactly.
    pub engine_matches: bool,
    /// Whether the native engine fell back to the scalar path.
    pub engine_fallback: bool,
}

/// Report for a (loop, policy) pair the placement phase rejects.
#[derive(Debug)]
pub struct InapplicableReport {
    /// Loop metadata (policy = the rejected one).
    pub info: LoopInfo,
    /// The policy error, verbatim.
    pub error: String,
    /// Why the paper says this combination cannot work, in prose.
    pub explanation: String,
}

/// Report for a strided loop (the §7 extension path).
#[derive(Debug)]
pub struct StridedReport {
    /// Loop metadata (policy is recorded but unused by this path).
    pub info: LoopInfo,
    /// The generated program.
    pub program: SimdProgram,
    /// Measured dynamic counts.
    pub stats: RunStats,
    /// Data elements produced.
    pub data: u64,
    /// Measured operations per datum.
    pub opd: f64,
    /// The strided generator's static cost model OPD.
    pub model_opd: f64,
    /// Whether the run verified against the scalar oracle.
    pub verified: bool,
    /// Speedup over the idealistic scalar loop.
    pub speedup: f64,
}

impl Explainer {
    /// An explainer with the pipeline's defaults: 16-byte vectors,
    /// automatic policy, software pipelining, seed 2004, runtime trip
    /// count 1000.
    pub fn new() -> Explainer {
        Explainer::default()
    }

    /// Forces a shift-placement policy (automatic choice otherwise).
    pub fn policy(mut self, policy: Policy) -> Explainer {
        self.policy = Some(policy);
        self
    }

    /// Sets the vector register shape.
    pub fn shape(mut self, shape: VectorShape) -> Explainer {
        self.shape = shape;
        self
    }

    /// Sets the register-reuse scheme.
    pub fn reuse(mut self, reuse: ReuseMode) -> Explainer {
        self.reuse = reuse;
        self
    }

    /// Sets the memory-image seed of the measured run.
    pub fn seed(mut self, seed: u64) -> Explainer {
        self.seed = seed;
        self
    }

    /// Sets the trip count used when the loop's is a runtime value.
    pub fn ub(mut self, ub: u64) -> Explainer {
        self.ub = ub;
        self
    }

    /// Sets the loop's runtime parameter values.
    pub fn params(mut self, params: Vec<i64>) -> Explainer {
        self.params = params;
        self
    }

    /// Parses `source` and explains it (see [`Explainer::explain`]).
    ///
    /// # Errors
    ///
    /// Parse errors, plus everything [`Explainer::explain`] returns.
    pub fn explain_source(&self, source: &str) -> Result<ExplainReport, ExplainError> {
        let program = parse_program(source)?;
        self.explain(&program)
    }

    /// Runs the traced pipeline over `program` and assembles the
    /// report: placement trace → codegen trace → differential run →
    /// native-engine cross-check → back-linked listing → OPD
    /// accounting.
    ///
    /// # Errors
    ///
    /// Graph construction, code generation, execution or verification
    /// failures. A policy that merely *does not apply* returns
    /// `Ok(ExplainReport::Inapplicable)` instead.
    pub fn explain(&self, program: &LoopProgram) -> Result<ExplainReport, ExplainError> {
        let policy = self.policy.unwrap_or(if program.all_alignments_known() {
            Policy::Dominant
        } else {
            Policy::Zero
        });
        let info = LoopInfo {
            source: program.to_source(),
            array_names: program
                .arrays()
                .iter()
                .map(|a| a.name().to_string())
                .collect(),
            policy,
            policy_forced: self.policy.is_some(),
            shape: self.shape,
            block: self.shape.blocking_factor(program.elem()),
            seed: self.seed,
            ub: program.trip().known().unwrap_or(self.ub),
        };

        if program.all_refs().iter().any(|r| !r.is_unit_stride()) {
            return self.explain_strided(program, info);
        }

        let graph = ReorgGraph::build(program, self.shape)?;
        let mut decisions = Decisions::default();
        let placed = match graph.with_policy_traced(policy, &mut decisions.placement) {
            Ok(p) => p,
            Err(e @ PolicyError::NeedsCompileTimeAlignment { .. }) => {
                return Ok(ExplainReport::Inapplicable(InapplicableReport {
                    info,
                    error: e.to_string(),
                    explanation: format!(
                        "The {}-shift policy reconciles stream offsets to compile-time \
                         byte positions, but this loop has at least one array whose \
                         alignment is only known at run time. Only the zero-shift \
                         policy applies then (paper §4.4): it shifts every load \
                         stream to offset 0 — an amount computable at run time as \
                         `addr & (V-1)` — and shifts back up just before the store. \
                         Re-run with `--policy zero`, or drop `--policy` to let the \
                         driver choose automatically.",
                        policy.name()
                    ),
                }));
            }
            Err(e) => {
                return Ok(ExplainReport::Inapplicable(InapplicableReport {
                    info,
                    error: e.to_string(),
                    explanation:
                        "The placement phase rejected this loop/policy combination; \
                         see the error above for the violated precondition."
                            .to_string(),
                }));
            }
        };

        let options = CodegenOptions::default().reuse(self.reuse);
        let mut ctrace = CodegenTrace::new();
        let compiled = generate_traced(&placed, &options, &mut ctrace)?;
        decisions.codegen = ctrace;

        let outcome = run_differential(&compiled, &self.diff_config())?;

        // Cross-check with the compiled native engine and pick up its
        // trace-fusion decisions.
        let input = RunInput {
            ub: info.ub,
            params: self.params.clone(),
        };
        let mut image = MemoryImage::with_seed(program, self.shape, self.seed);
        let kernel = CompiledKernel::compile(&compiled, &image, &input)?;
        let engine_stats = kernel.run(&mut image)?;
        let engine_matches = engine_stats == outcome.stats;
        let engine_fallback = kernel.is_fallback();
        decisions.fusion = kernel.fusion_events().to_vec();

        let sections = annotate(&compiled, &placed, &decisions);
        let lower_bound = lower_bound_parts(program, self.shape, policy);
        let accounting = account(
            &outcome.stats,
            outcome.data_produced,
            Some(&lower_bound),
            &decisions,
        );

        Ok(ExplainReport::Stream(Box::new(StreamReport {
            info,
            graph: placed.to_string(),
            shift_count: placed.shift_count(),
            decisions,
            program: compiled,
            sections,
            accounting,
            lower_bound,
            stats: outcome.stats,
            verified: outcome.verified,
            speedup: outcome.speedup(),
            engine_matches,
            engine_fallback,
        })))
    }

    fn explain_strided(
        &self,
        program: &LoopProgram,
        info: LoopInfo,
    ) -> Result<ExplainReport, ExplainError> {
        let compiled = generate_strided(program, self.shape)?;
        let outcome = run_differential(&compiled, &self.diff_config())?;
        Ok(ExplainReport::Strided(Box::new(StridedReport {
            info,
            opd: outcome.opd(),
            model_opd: strided_model_opd(program, self.shape).unwrap_or(f64::NAN),
            verified: outcome.verified,
            speedup: outcome.speedup(),
            data: outcome.data_produced,
            stats: outcome.stats,
            program: compiled,
        })))
    }

    fn diff_config(&self) -> DiffConfig {
        DiffConfig::with_seed(self.seed)
            .runtime_ub(self.ub)
            .params(self.params.clone())
    }
}
