//! Flattened decision records with stable, report-wide identifiers.
//!
//! The three pipeline phases each produce their own typed event stream
//! ([`PlacementTrace`], [`CodegenTrace`], [`FusionEvent`]s). The
//! explain layer flattens them into one numbered decision list so a
//! report can reference any decision by a short stable id: `P<n>` for
//! shift-placement decisions, `G<n>` for code-generation decisions and
//! `F<n>` for engine trace-fusion rewrites, where `<n>` is the event's
//! position in its phase's stream.

use simdize_codegen::CodegenTrace;
use simdize_engine::FusionEvent;
use simdize_reorg::PlacementTrace;
use std::fmt;

/// Which pipeline phase a decision belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Stream-shift placement (`simdize-reorg`, paper §3).
    Placement,
    /// SIMD code generation (`simdize-codegen`, paper §4).
    Codegen,
    /// Engine trace fusion (`simdize-engine`).
    Fusion,
}

impl Phase {
    /// The one-letter id prefix (`P`, `G`, `F`).
    pub fn prefix(self) -> char {
        match self {
            Phase::Placement => 'P',
            Phase::Codegen => 'G',
            Phase::Fusion => 'F',
        }
    }

    /// The phase's lowercase name, as used in the JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Placement => "placement",
            Phase::Codegen => "codegen",
            Phase::Fusion => "fusion",
        }
    }
}

/// A stable identifier of one decision within a report: the phase plus
/// the event's index in that phase's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DecisionId {
    /// The phase whose event stream the decision comes from.
    pub phase: Phase,
    /// Zero-based index into that stream.
    pub index: usize,
}

impl DecisionId {
    /// A placement decision id (`P<index>`).
    pub fn placement(index: usize) -> DecisionId {
        DecisionId {
            phase: Phase::Placement,
            index,
        }
    }

    /// A codegen decision id (`G<index>`).
    pub fn codegen(index: usize) -> DecisionId {
        DecisionId {
            phase: Phase::Codegen,
            index,
        }
    }

    /// A fusion decision id (`F<index>`).
    pub fn fusion(index: usize) -> DecisionId {
        DecisionId {
            phase: Phase::Fusion,
            index,
        }
    }
}

impl fmt::Display for DecisionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.phase.prefix(), self.index)
    }
}

/// All decisions recorded while explaining one loop: the raw event
/// streams of the three phases, addressable by [`DecisionId`].
#[derive(Debug, Clone, Default)]
pub struct Decisions {
    /// Shift-placement events (`P*`).
    pub placement: PlacementTrace,
    /// Code-generation events (`G*`).
    pub codegen: CodegenTrace,
    /// Engine trace-fusion events (`F*`).
    pub fusion: Vec<FusionEvent>,
}

impl Decisions {
    /// Total number of decisions across all phases.
    pub fn len(&self) -> usize {
        self.placement.events.len() + self.codegen.events.len() + self.fusion.len()
    }

    /// Whether no decisions were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every decision as `(id, human-readable text)`, in phase order
    /// (placement, then codegen, then fusion) and event order within
    /// each phase.
    pub fn entries(&self) -> Vec<(DecisionId, String)> {
        let mut out = Vec::with_capacity(self.len());
        for (i, e) in self.placement.events.iter().enumerate() {
            out.push((DecisionId::placement(i), e.to_string()));
        }
        for (i, e) in self.codegen.events.iter().enumerate() {
            out.push((DecisionId::codegen(i), e.to_string()));
        }
        for (i, e) in self.fusion.iter().enumerate() {
            out.push((DecisionId::fusion(i), e.to_string()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display() {
        assert_eq!(DecisionId::placement(3).to_string(), "P3");
        assert_eq!(DecisionId::codegen(0).to_string(), "G0");
        assert_eq!(DecisionId::fusion(12).to_string(), "F12");
    }

    #[test]
    fn empty_decisions() {
        let d = Decisions::default();
        assert!(d.is_empty());
        assert!(d.entries().is_empty());
    }
}
