//! Machine-readable report rendering: the versioned
//! `simdize-explain/v1` JSON schema.
//!
//! The schema is hand-rolled (the project carries zero external
//! dependencies) and pinned by golden-file tests: every document has a
//! `"schema"` field, a `"mode"` discriminant
//! (`"stream"` / `"inapplicable"` / `"strided"`), and a `"loop"`
//! object; stream reports add `"decisions"`, `"program"`,
//! `"accounting"`, `"stats"` and `"engine"` sections.

use crate::accounting::Accounting;
use crate::backlink::AnnotatedSection;
use crate::decision::DecisionId;
use crate::report::{
    ExplainReport, InapplicableReport, LoopInfo, StreamReport, StridedReport,
};
use simdize_vm::RunStats;
use std::fmt::Write as _;

/// The version tag emitted in every document's `"schema"` field.
pub const SCHEMA: &str = "simdize-explain/v1";

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity: render those as `null`, everything else
/// with six fractional digits (deterministic across runs).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn links_json(links: &[DecisionId]) -> String {
    let items: Vec<String> = links.iter().map(|l| format!("\"{l}\"")).collect();
    format!("[{}]", items.join(","))
}

fn loop_json(info: &LoopInfo) -> String {
    let arrays: Vec<String> = info
        .array_names
        .iter()
        .map(|n| format!("\"{}\"", escape_json(n)))
        .collect();
    format!(
        "{{\"source\":\"{}\",\"arrays\":[{}],\"policy\":\"{}\",\"policy_forced\":{},\
         \"shape\":\"{}\",\"block\":{},\"seed\":{},\"ub\":{}}}",
        escape_json(&info.source),
        arrays.join(","),
        info.policy.name(),
        info.policy_forced,
        info.shape,
        info.block,
        info.seed,
        info.ub
    )
}

fn stats_json(stats: &RunStats) -> String {
    format!(
        "{{\"loads\":{},\"stores\":{},\"shifts\":{},\"splices\":{},\"splats\":{},\
         \"ops\":{},\"copies\":{},\"loop_overhead\":{},\"invocation_overhead\":{},\
         \"unaligned_mem\":{},\"scalar_fallback\":{},\"total\":{}}}",
        stats.loads,
        stats.stores,
        stats.shifts,
        stats.splices,
        stats.splats,
        stats.ops,
        stats.copies,
        stats.loop_overhead,
        stats.invocation_overhead,
        stats.unaligned_mem,
        stats.scalar_fallback,
        stats.total()
    )
}

fn sections_json(sections: &[AnnotatedSection]) -> String {
    let rendered: Vec<String> = sections
        .iter()
        .map(|s| {
            let insts: Vec<String> = s
                .insts
                .iter()
                .map(|i| {
                    format!(
                        "{{\"text\":\"{}\",\"depth\":{},\"links\":{}}}",
                        escape_json(&i.text),
                        i.depth,
                        links_json(&i.links)
                    )
                })
                .collect();
            format!(
                "{{\"name\":\"{}\",\"header\":\"{}\",\"insts\":[{}]}}",
                s.name,
                escape_json(&s.header),
                insts.join(",")
            )
        })
        .collect();
    format!("[{}]", rendered.join(","))
}

fn accounting_json(a: &Accounting) -> String {
    let rows: Vec<String> = a
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"class\":\"{}\",\"count\":{},\"weight\":{},\"contribution\":{},\
                 \"bound\":{},\"note\":\"{}\",\"links\":{}}}",
                r.class,
                r.count,
                r.weight,
                r.contribution,
                num(r.bound),
                escape_json(r.note),
                links_json(&r.links)
            )
        })
        .collect();
    format!(
        "{{\"rows\":[{}],\"total\":{},\"data\":{},\"opd\":{},\"bound_opd\":{}}}",
        rows.join(","),
        a.total,
        a.data,
        num(a.opd),
        num(a.bound_opd)
    )
}

/// Renders a report as a `simdize-explain/v1` JSON document.
pub fn render_json(report: &ExplainReport) -> String {
    match report {
        ExplainReport::Stream(r) => stream_json(r),
        ExplainReport::Inapplicable(r) => inapplicable_json(r),
        ExplainReport::Strided(r) => strided_json(r),
    }
}

fn stream_json(r: &StreamReport) -> String {
    let decisions: Vec<String> = r
        .decisions
        .entries()
        .iter()
        .map(|(id, text)| {
            format!(
                "{{\"id\":\"{id}\",\"phase\":\"{}\",\"text\":\"{}\"}}",
                id.phase.name(),
                escape_json(text)
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"mode\":\"stream\",\"loop\":{},\
         \"shift_count\":{},\"decisions\":[{}],\"program\":{{\"sections\":{}}},\
         \"accounting\":{},\"stats\":{},\"verified\":{},\"speedup\":{},\
         \"engine\":{{\"matches\":{},\"fallback\":{}}}}}",
        loop_json(&r.info),
        r.shift_count,
        decisions.join(","),
        sections_json(&r.sections),
        accounting_json(&r.accounting),
        stats_json(&r.stats),
        r.verified,
        num(r.speedup),
        r.engine_matches,
        r.engine_fallback
    )
}

fn inapplicable_json(r: &InapplicableReport) -> String {
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"mode\":\"inapplicable\",\"loop\":{},\
         \"error\":\"{}\",\"explanation\":\"{}\"}}",
        loop_json(&r.info),
        escape_json(&r.error),
        escape_json(&r.explanation)
    )
}

fn strided_json(r: &StridedReport) -> String {
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"mode\":\"strided\",\"loop\":{},\
         \"program\":\"{}\",\"stats\":{},\"data\":{},\"opd\":{},\"model_opd\":{},\
         \"verified\":{},\"speedup\":{}}}",
        loop_json(&r.info),
        escape_json(&r.program.to_string()),
        stats_json(&r.stats),
        r.data,
        num(r.opd),
        num(r.model_opd),
        r.verified,
        num(r.speedup)
    )
}
