//! Operations-per-datum accounting: decomposing the measured dynamic
//! instruction counts against the paper's §5.3 analytic lower bound,
//! with every operation class attributed to the decisions that caused
//! it.
//!
//! The invariant the explain tests pin down: the weighted contributions
//! of all rows sum *exactly* to [`RunStats::total`] — no operation the
//! machine executed goes unaccounted.

use crate::decision::{DecisionId, Decisions};
use simdize_codegen::CodegenEvent;
use simdize_reorg::{Constraint, PlacementEvent};
use simdize_vm::{RunStats, UNALIGNED_MEM_COST};
use simdize_workloads::LowerBound;

/// One operation class of the accounting table.
#[derive(Debug, Clone, PartialEq)]
pub struct AccountRow {
    /// The [`RunStats`] field this row accounts for.
    pub class: &'static str,
    /// Raw dynamic count.
    pub count: u64,
    /// Cost-model weight (1 for everything except hardware-misaligned
    /// accesses, which cost [`UNALIGNED_MEM_COST`]).
    pub weight: u64,
    /// `count × weight` — the row's contribution to the total.
    pub contribution: u64,
    /// The analytic lower bound's contribution for this class over the
    /// whole run (0 for classes the bound proves avoidable).
    pub bound: f64,
    /// Prose attribution of the class (and of any excess over the
    /// bound).
    pub note: &'static str,
    /// Decisions responsible for operations in this class.
    pub links: Vec<DecisionId>,
}

/// The full accounting of one measured run.
#[derive(Debug, Clone, PartialEq)]
pub struct Accounting {
    /// One row per [`RunStats`] class, in the cost model's order.
    pub rows: Vec<AccountRow>,
    /// Σ row contributions — equals [`RunStats::total`] exactly.
    pub total: u64,
    /// Data elements produced.
    pub data: u64,
    /// Measured operations per datum (`total / data`).
    pub opd: f64,
    /// The analytic lower-bound OPD (§5.3).
    pub bound_opd: f64,
}

/// Decision ids selected from the streams by a predicate, for row
/// attribution.
fn placement_ids(d: &Decisions, pred: impl Fn(&PlacementEvent) -> bool) -> Vec<DecisionId> {
    d.placement
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| pred(e))
        .map(|(i, _)| DecisionId::placement(i))
        .collect()
}

fn codegen_ids(d: &Decisions, pred: impl Fn(&CodegenEvent) -> bool) -> Vec<DecisionId> {
    d.codegen
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| pred(e))
        .map(|(i, _)| DecisionId::codegen(i))
        .collect()
}

/// Builds the accounting table for one measured run.
///
/// `bound` is the §5.3 per-steady-iteration lower bound; its per-class
/// counts are scaled to the whole run (`data / (B · statements)`
/// steady iterations' worth of work) so measured and bound columns are
/// directly comparable. Classes outside the bound's model (splices,
/// splats, copies, overheads) get a zero bound and a decision
/// attribution instead.
pub fn account(
    stats: &RunStats,
    data: u64,
    bound: Option<&LowerBound>,
    decisions: &Decisions,
) -> Accounting {
    let iterations = bound.map_or(0.0, |b| data as f64 / b.data_per_iteration());
    let scale = |per_iter: usize| iterations * per_iter as f64;

    let shifts = placement_ids(decisions, |e| matches!(e, PlacementEvent::ShiftInserted { .. }));
    let loads = placement_ids(decisions, |e| {
        matches!(e, PlacementEvent::OffsetComputed { desc, .. } if desc.starts_with("vload"))
    });
    let splats = placement_ids(decisions, |e| {
        matches!(e, PlacementEvent::OffsetComputed { desc, .. } if desc.starts_with("vsplat"))
    });
    let c2 = placement_ids(decisions, |e| {
        matches!(
            e,
            PlacementEvent::ConstraintChecked {
                constraint: Constraint::C2,
                ..
            }
        )
    });
    let c3 = placement_ids(decisions, |e| {
        matches!(
            e,
            PlacementEvent::ConstraintChecked {
                constraint: Constraint::C3,
                ..
            }
        )
    });
    let bounds_d = codegen_ids(decisions, |e| matches!(e, CodegenEvent::BoundsChosen { .. }));
    let prologue_d = codegen_ids(decisions, |e| {
        matches!(e, CodegenEvent::ProloguePeeled { .. })
    });
    let epilogue_d = codegen_ids(decisions, |e| {
        matches!(
            e,
            CodegenEvent::EpilogueForm { .. } | CodegenEvent::ReductionEpilogue { .. }
        )
    });
    let reuse_d = codegen_ids(decisions, |e| matches!(e, CodegenEvent::ReuseApplied { .. }));
    let reduction_d = codegen_ids(decisions, |e| {
        matches!(e, CodegenEvent::ReductionEpilogue { .. })
    });

    let mut edge_d = prologue_d.clone();
    edge_d.extend(epilogue_d.iter().copied());

    let mut load_d = loads.clone();
    load_d.extend(edge_d.iter().copied());
    let mut store_d = c2;
    store_d.extend(edge_d.iter().copied());
    let mut splat_d = splats;
    splat_d.extend(reduction_d.iter().copied());
    let mut ops_d = c3;
    ops_d.extend(reduction_d.iter().copied());
    let mut guard_d = bounds_d.clone();
    guard_d.extend(edge_d.iter().copied());

    let rows = vec![
        AccountRow {
            class: "loads",
            count: stats.loads,
            weight: 1,
            contribution: stats.loads,
            bound: bound.map_or(0.0, |b| scale(b.loads)),
            note: "distinct truncated chunk loads; excess over the bound comes from \
                   prologue/epilogue partial-store reads",
            links: load_d,
        },
        AccountRow {
            class: "stores",
            count: stats.stores,
            weight: 1,
            contribution: stats.stores,
            bound: bound.map_or(0.0, |b| scale(b.stores)),
            note: "one truncated store per steady iteration per statement, plus \
                   partial stores at the loop edges",
            links: store_d,
        },
        AccountRow {
            class: "shifts",
            count: stats.shifts,
            weight: 1,
            contribution: stats.shifts,
            bound: bound.map_or(0.0, |b| scale(b.shifts)),
            note: "vshiftpair reorganization: each dynamic shift executes one \
                   vshiftstream the placement policy inserted",
            links: shifts,
        },
        AccountRow {
            class: "splices",
            count: stats.splices,
            weight: 1,
            contribution: stats.splices,
            bound: 0.0,
            note: "partial-store blends at prologue/epilogue boundaries (Figure 9); \
                   the steady state needs none",
            links: edge_d.clone(),
        },
        AccountRow {
            class: "splats",
            count: stats.splats,
            weight: 1,
            contribution: stats.splats,
            bound: 0.0,
            note: "invariant replications (source constants/parameters, reduction \
                   identities and fold masks)",
            links: splat_d,
        },
        AccountRow {
            class: "ops",
            count: stats.ops,
            weight: 1,
            contribution: stats.ops,
            bound: bound.map_or(0.0, |b| scale(b.ops)),
            note: "lane-wise arithmetic of the source expressions (plus reduction \
                   accumulate/fold ops)",
            links: ops_d,
        },
        AccountRow {
            class: "copies",
            count: stats.copies,
            weight: 1,
            contribution: stats.copies,
            bound: 0.0,
            note: "loop-carried register rotations of the reuse scheme (Figure 10 \
                   line 19); unroll-by-2 removes most",
            links: reuse_d,
        },
        AccountRow {
            class: "loop_overhead",
            count: stats.loop_overhead,
            weight: 1,
            contribution: stats.loop_overhead,
            bound: 0.0,
            note: "one increment-and-branch per executed loop iteration (cost \
                   model, not in the paper's OPD bound)",
            links: bounds_d.clone(),
        },
        AccountRow {
            class: "invocation_overhead",
            count: stats.invocation_overhead,
            weight: 1,
            contribution: stats.invocation_overhead,
            bound: 0.0,
            note: "per-invocation setup: call overhead plus runtime evaluation of \
                   alignment/bound expressions",
            links: bounds_d,
        },
        AccountRow {
            class: "unaligned_mem",
            count: stats.unaligned_mem,
            weight: UNALIGNED_MEM_COST,
            contribution: stats.unaligned_mem * UNALIGNED_MEM_COST,
            bound: 0.0,
            note: "hardware-misaligned accesses (unaligned target only), weighted \
                   by their extra cost",
            links: Vec::new(),
        },
        AccountRow {
            class: "scalar_fallback",
            count: stats.scalar_fallback,
            weight: 1,
            contribution: stats.scalar_fallback,
            bound: 0.0,
            note: "scalar loop taken when the trip count fails the ub > 3B guard \
                   (§4.4)",
            links: guard_d,
        },
    ];

    let total: u64 = rows.iter().map(|r| r.contribution).sum();
    debug_assert_eq!(total, stats.total(), "accounting must cover every op");
    Accounting {
        rows,
        total,
        data,
        opd: total as f64 / data as f64,
        bound_opd: bound.map_or(f64::NAN, |b| b.opd()),
    }
}
