//! Human-readable report rendering: plain text for the terminal and
//! Markdown for the generated worked-example docs.

use crate::decision::DecisionId;
use crate::report::{
    ExplainReport, InapplicableReport, LoopInfo, StreamReport, StridedReport,
};
use std::fmt::Write as _;

fn links_str(links: &[DecisionId]) -> String {
    links
        .iter()
        .map(|l| l.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn loop_header(out: &mut String, info: &LoopInfo) {
    for line in info.source.lines() {
        let _ = writeln!(out, "    {line}");
    }
    let names: Vec<String> = info
        .array_names
        .iter()
        .enumerate()
        .map(|(i, n)| format!("arr{i} = {n}"))
        .collect();
    let _ = writeln!(out, "arrays: {}", names.join(", "));
    let _ = writeln!(
        out,
        "policy: {} ({}); {} lanes on {}; seed {}; trip count {}",
        info.policy.name(),
        if info.policy_forced {
            "forced"
        } else {
            "chosen automatically"
        },
        info.block,
        info.shape,
        info.seed,
        info.ub
    );
}

/// Renders a report as plain text for the terminal.
pub fn render_text(report: &ExplainReport) -> String {
    match report {
        ExplainReport::Stream(r) => stream_text(r),
        ExplainReport::Inapplicable(r) => inapplicable_text(r),
        ExplainReport::Strided(r) => strided_text(r),
    }
}

fn stream_text(r: &StreamReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "simdize explain — stream simdization");
    loop_header(&mut out, &r.info);

    let _ = writeln!(out, "\n== decisions ==");
    for (id, text) in r.decisions.entries() {
        let _ = writeln!(out, "{id:>4}  {text}");
    }

    let _ = writeln!(out, "\n== data reorganization graph (after placement) ==");
    out.push_str(&r.graph);
    let _ = writeln!(out, "{} stream shift(s)", r.shift_count);

    let _ = writeln!(
        out,
        "\n== generated program (instruction \u{2190} decisions) =="
    );
    let width = r
        .sections
        .iter()
        .flat_map(|s| s.insts.iter())
        .map(|i| i.text.chars().count() + 4 * i.depth)
        .max()
        .unwrap_or(0);
    for section in &r.sections {
        let _ = writeln!(out, "{}", section.header);
        for inst in &section.insts {
            let indent = "    ".repeat(inst.depth);
            let pad = width - (inst.text.chars().count() + 4 * inst.depth);
            let _ = writeln!(
                out,
                "  {indent}{}{}  \u{2190} {}",
                inst.text,
                " ".repeat(pad),
                links_str(&inst.links)
            );
        }
    }

    let _ = writeln!(
        out,
        "\n== operations-per-datum accounting (every op attributed) =="
    );
    let _ = writeln!(
        out,
        "{:<20} {:>9} {:>7} {:>9} {:>9} {:>9}  decisions",
        "class", "count", "weight", "ops", "bound", "excess"
    );
    for row in &r.accounting.rows {
        if row.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<20} {:>9} {:>7} {:>9} {:>9.2} {:>+9.2}  {}",
            row.class,
            row.count,
            row.weight,
            row.contribution,
            row.bound,
            row.contribution as f64 - row.bound,
            links_str(&row.links)
        );
    }
    let _ = writeln!(
        out,
        "{:<20} {:>9} {:>7} {:>9}",
        "total", "", "", r.accounting.total
    );
    let _ = writeln!(
        out,
        "opd: {:.3} measured ({} ops / {} data) vs {:.3} analytic lower bound (\u{a7}5.3)",
        r.accounting.opd, r.accounting.total, r.accounting.data, r.accounting.bound_opd
    );
    let _ = writeln!(
        out,
        "verified: {} (byte-identical to the scalar oracle); native engine stats match: {}{}",
        r.verified,
        r.engine_matches,
        if r.engine_fallback {
            " (engine used the scalar fallback)"
        } else {
            ""
        }
    );
    let _ = writeln!(out, "speedup: {:.2}x vs idealistic scalar", r.speedup);
    out
}

fn inapplicable_text(r: &InapplicableReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simdize explain — policy {} does not apply",
        r.info.policy.name()
    );
    loop_header(&mut out, &r.info);
    let _ = writeln!(out, "\nerror: {}", r.error);
    let _ = writeln!(out, "\nwhy:");
    for line in wrap(&r.explanation, 72) {
        let _ = writeln!(out, "  {line}");
    }
    out
}

fn strided_text(r: &StridedReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simdize explain — strided loop (\u{a7}7 gather/scatter extension)"
    );
    loop_header(&mut out, &r.info);
    let _ = writeln!(
        out,
        "\nThis loop has non-unit-stride references, so it compiles through the\n\
         strided permute generator, which packs gathered lanes with general\n\
         vperm networks. Stream-shift placement policies (and their decision\n\
         traces) only apply to the stride-one stream framework of \u{a7}3\u{2013}\u{a7}4."
    );
    let _ = writeln!(out, "\n== generated program ==");
    out.push_str(&r.program.to_string());
    let _ = writeln!(out, "\n== measurement ==");
    let _ = writeln!(out, "stats: {}", r.stats);
    let _ = writeln!(
        out,
        "opd: {:.3} measured ({} data) vs {:.3} static model; speedup {:.2}x",
        r.opd, r.data, r.model_opd, r.speedup
    );
    let _ = writeln!(out, "verified: {}", r.verified);
    out
}

/// Renders a report as Markdown (the format of `docs/worked-examples/`).
pub fn render_markdown(report: &ExplainReport) -> String {
    match report {
        ExplainReport::Stream(r) => stream_markdown(r),
        ExplainReport::Inapplicable(r) => inapplicable_markdown(r),
        ExplainReport::Strided(r) => strided_markdown(r),
    }
}

fn md_loop_header(out: &mut String, info: &LoopInfo, title: &str) {
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "\n```text");
    let _ = write!(out, "{}", info.source);
    let _ = writeln!(out, "```");
    let names: Vec<String> = info
        .array_names
        .iter()
        .enumerate()
        .map(|(i, n)| format!("`arr{i}` = `{n}`"))
        .collect();
    let _ = writeln!(
        out,
        "\n- policy: **{}** ({})",
        info.policy.name(),
        if info.policy_forced {
            "forced"
        } else {
            "chosen automatically"
        }
    );
    let _ = writeln!(out, "- vector shape: {} ({} lanes)", info.shape, info.block);
    let _ = writeln!(out, "- array ids: {}", names.join(", "));
    let _ = writeln!(
        out,
        "- measured with memory seed {}, trip count {}",
        info.seed, info.ub
    );
}

fn stream_markdown(r: &StreamReport) -> String {
    let mut out = String::new();
    md_loop_header(
        &mut out,
        &r.info,
        &format!("Worked example: {}-shift placement", r.info.policy.name()),
    );

    let _ = writeln!(out, "\n## Decisions\n");
    let _ = writeln!(out, "| id | decision |");
    let _ = writeln!(out, "|----|----------|");
    for (id, text) in r.decisions.entries() {
        let _ = writeln!(out, "| {id} | {} |", text.replace('|', "\\|"));
    }

    let _ = writeln!(out, "\n## Data reorganization graph (after placement)\n");
    let _ = writeln!(out, "```text");
    out.push_str(&r.graph);
    let _ = writeln!(out, "{} stream shift(s)", r.shift_count);
    let _ = writeln!(out, "```");

    let _ = writeln!(out, "\n## Generated program\n");
    let _ = writeln!(
        out,
        "Every instruction is back-linked (`\u{2190}`) to the decision(s) that \
         produced it; ids refer to the table above.\n"
    );
    let _ = writeln!(out, "```text");
    let width = r
        .sections
        .iter()
        .flat_map(|s| s.insts.iter())
        .map(|i| i.text.chars().count() + 4 * i.depth)
        .max()
        .unwrap_or(0);
    for section in &r.sections {
        let _ = writeln!(out, "{}", section.header);
        for inst in &section.insts {
            let indent = "    ".repeat(inst.depth);
            let pad = width - (inst.text.chars().count() + 4 * inst.depth);
            let _ = writeln!(
                out,
                "  {indent}{}{}  \u{2190} {}",
                inst.text,
                " ".repeat(pad),
                links_str(&inst.links)
            );
        }
    }
    let _ = writeln!(out, "```");

    let _ = writeln!(out, "\n## Operations-per-datum accounting\n");
    let _ = writeln!(
        out,
        "| class | count | weight | ops | bound | excess | decisions |"
    );
    let _ = writeln!(out, "|-------|------:|-------:|----:|------:|-------:|-----------|");
    for row in &r.accounting.rows {
        if row.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.2} | {:+.2} | {} |",
            row.class,
            row.count,
            row.weight,
            row.contribution,
            row.bound,
            row.contribution as f64 - row.bound,
            links_str(&row.links)
        );
    }
    let _ = writeln!(
        out,
        "| **total** | | | **{}** | | | |",
        r.accounting.total
    );
    let _ = writeln!(
        out,
        "\nMeasured OPD **{:.3}** ({} ops over {} data) against the \u{a7}5.3 \
         analytic lower bound **{:.3}**. The weighted counts above sum exactly \
         to the engine's measured total — every excess op is attributed to a \
         named decision.",
        r.accounting.opd, r.accounting.total, r.accounting.data, r.accounting.bound_opd
    );
    let _ = writeln!(
        out,
        "\n- verified: **{}** (byte-identical to the scalar oracle)",
        r.verified
    );
    let _ = writeln!(
        out,
        "- native engine stats match the interpreter: **{}**{}",
        r.engine_matches,
        if r.engine_fallback {
            " (scalar fallback)"
        } else {
            ""
        }
    );
    let _ = writeln!(out, "- speedup: **{:.2}x** vs idealistic scalar", r.speedup);
    out
}

fn inapplicable_markdown(r: &InapplicableReport) -> String {
    let mut out = String::new();
    md_loop_header(
        &mut out,
        &r.info,
        &format!(
            "Worked example: why {}-shift does not apply",
            r.info.policy.name()
        ),
    );
    let _ = writeln!(out, "\n## The policy is inapplicable\n");
    let _ = writeln!(out, "```text\n{}\n```", r.error);
    let _ = writeln!(out, "\n{}", r.explanation);
    out
}

fn strided_markdown(r: &StridedReport) -> String {
    let mut out = String::new();
    md_loop_header(
        &mut out,
        &r.info,
        "Worked example: strided loop (\u{a7}7 extension)",
    );
    let _ = writeln!(
        out,
        "\nThis loop has non-unit-stride references, so it compiles through the \
         strided permute generator (gather/scatter `vperm` networks). \
         Stream-shift placement policies — and their decision traces — only \
         apply to the stride-one stream framework of \u{a7}3\u{2013}\u{a7}4; the page is \
         identical under every policy."
    );
    let _ = writeln!(out, "\n## Generated program\n");
    let _ = writeln!(out, "```text");
    out.push_str(&r.program.to_string());
    let _ = writeln!(out, "```");
    let _ = writeln!(out, "\n## Measurement\n");
    let _ = writeln!(out, "- stats: `{}`", r.stats);
    let _ = writeln!(
        out,
        "- OPD: **{:.3}** measured ({} data) vs **{:.3}** static model",
        r.opd, r.data, r.model_opd
    );
    let _ = writeln!(out, "- speedup: **{:.2}x** vs idealistic scalar", r.speedup);
    let _ = writeln!(out, "- verified: **{}**", r.verified);
    out
}

fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut line = String::new();
    for word in text.split_whitespace() {
        if !line.is_empty() && line.chars().count() + 1 + word.chars().count() > width {
            lines.push(std::mem::take(&mut line));
        }
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(word);
    }
    if !line.is_empty() {
        lines.push(line);
    }
    lines
}
