//! Back-linking emitted instructions to the decisions that produced
//! them.
//!
//! Code generation and the post passes (LVN, DCE, unroll) renumber and
//! rewrite instructions, so no id survives from the reorganization
//! graph to the final [`SimdProgram`]. Instead of threading provenance
//! through every pass, the matcher works *post hoc* on the final
//! program: each instruction kind carries enough structure (the array
//! of a truncating load, the `(from − to) mod V` amount of a
//! `vshiftpair`, the lane operation of a `vop`, the section it sits
//! in) to recover the placement and codegen decisions that explain it.
//!
//! The matcher is deliberately conservative: an ambiguous instruction
//! (e.g. two shifts with the same byte amount) links to *every*
//! decision that could have produced it, and an instruction introduced
//! purely by loop structure (bounds, guards) links to the structural
//! [`CodegenEvent::BoundsChosen`] decision — so every instruction in
//! the report carries at least one link.

use crate::decision::{DecisionId, Decisions};
use simdize_codegen::{CodegenEvent, SExpr, SimdProgram, VInst};
use simdize_ir::{BinOp, UnOp};
use simdize_reorg::{
    shift_amount, Constraint, Offset, PlacementEvent, RNode, ReorgGraph, VOpKind,
};

/// One instruction of the annotated program listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedInst {
    /// The rendered instruction (guard headers render as `if <cond>:`).
    pub text: String,
    /// Nesting depth: 0 at section top level, 1 inside a guarded block.
    pub depth: usize,
    /// Decisions this instruction is attributed to (never empty for
    /// real instructions produced by [`annotate`]).
    pub links: Vec<DecisionId>,
}

/// One section of the annotated program listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedSection {
    /// Stable section key (`prologue`, `body_pair`, `body`, `epilogue`).
    pub name: &'static str,
    /// The human-readable section header with its loop bounds.
    pub header: String,
    /// The annotated instructions, in program order.
    pub insts: Vec<AnnotatedInst>,
}

/// Which program section an instruction sits in — the matcher uses it
/// to pick between prologue, steady-state and epilogue decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SectionKind {
    Prologue,
    Body,
    Epilogue,
}

/// Annotates every instruction of `program` with the decisions that
/// produced it. `graph` must be the placed reorganization graph the
/// program was generated from (its node ids give meaning to the
/// placement events in `decisions`).
pub fn annotate(
    program: &SimdProgram,
    graph: &ReorgGraph,
    decisions: &Decisions,
) -> Vec<AnnotatedSection> {
    let linker = Linker::new(program, graph, decisions);
    let mut out = Vec::new();
    out.push(linker.section(
        "prologue",
        "prologue (i = 0):".to_string(),
        program.prologue(),
        SectionKind::Prologue,
    ));
    if let Some(pair) = program.body_pair() {
        out.push(linker.section(
            "body_pair",
            format!(
                "steady ×2 (i = {}; i + {} < {}; i += {}):",
                program.lower_bound(),
                program.block(),
                program.upper_bound(),
                2 * program.block()
            ),
            pair,
            SectionKind::Body,
        ));
        out.push(linker.section(
            "body",
            format!(
                "steady leftover (while i < {}; i += {}):",
                program.upper_bound(),
                program.block()
            ),
            program.body(),
            SectionKind::Body,
        ));
    } else {
        out.push(linker.section(
            "body",
            format!(
                "steady (i = {}; i < {}; i += {}):",
                program.lower_bound(),
                program.upper_bound(),
                program.block()
            ),
            program.body(),
            SectionKind::Body,
        ));
    }
    out.push(linker.section(
        "epilogue",
        "epilogue:".to_string(),
        program.epilogue(),
        SectionKind::Epilogue,
    ));
    out
}

/// Prepared lookup tables from decision streams to ids.
struct Linker<'a> {
    program: &'a SimdProgram,
    /// Load-array index → decisions about that load stream.
    load_links: Vec<(usize, Vec<DecisionId>)>,
    /// Compile-time shifts: `(id, (from − to) mod V)`.
    shift_known: Vec<(DecisionId, u32)>,
    /// Runtime shifts: `(id, arrays named by the runtime offsets)`.
    shift_runtime: Vec<(DecisionId, Vec<usize>)>,
    /// stmt → (C.2) constraint + store-offset + dominant-choice ids.
    store_links: Vec<(usize, Vec<DecisionId>)>,
    /// Binary lane op → (C.3) decision ids.
    c3_bin: Vec<(BinOp, Vec<DecisionId>)>,
    /// Unary lane op → (C.3) decision ids.
    c3_un: Vec<(UnOp, Vec<DecisionId>)>,
    /// Splat constant value → decision ids.
    splat_const: Vec<(i64, Vec<DecisionId>)>,
    /// Splat parameter index → decision ids.
    splat_param: Vec<(usize, Vec<DecisionId>)>,
    /// Store-target array index → statement index.
    store_stmt: Vec<(usize, usize)>,
    /// Statement indices that are reductions.
    reduction_stmts: Vec<usize>,
    bounds: Vec<DecisionId>,
    prologue_d: Vec<(usize, DecisionId)>,
    reuse_d: Vec<DecisionId>,
    epilogue_d: Vec<(usize, DecisionId)>,
    reduction_d: Vec<(usize, DecisionId)>,
}

fn push_to<K: PartialEq>(map: &mut Vec<(K, Vec<DecisionId>)>, key: K, id: DecisionId) {
    if let Some((_, v)) = map.iter_mut().find(|(k, _)| *k == key) {
        v.push(id);
    } else {
        map.push((key, vec![id]));
    }
}

fn get_from<K: PartialEq>(map: &[(K, Vec<DecisionId>)], key: &K) -> Vec<DecisionId> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_default()
}

/// Array indices named by `Offset::Runtime` endpoints.
fn runtime_arrays(offsets: &[Offset]) -> Vec<usize> {
    let mut out = Vec::new();
    for o in offsets {
        if let Offset::Runtime { array, .. } = o {
            if !out.contains(&array.index()) {
                out.push(array.index());
            }
        }
    }
    out
}

/// Array indices named by `AlignOf` leaves of a scalar expression.
fn sexpr_arrays(e: &SExpr, out: &mut Vec<usize>) {
    match e {
        SExpr::Const(_) | SExpr::Ub => {}
        SExpr::AlignOf { array, .. } => {
            if !out.contains(&array.index()) {
                out.push(array.index());
            }
        }
        SExpr::Add(a, b)
        | SExpr::Sub(a, b)
        | SExpr::Mul(a, b)
        | SExpr::Div(a, b)
        | SExpr::Mod(a, b) => {
            sexpr_arrays(a, out);
            sexpr_arrays(b, out);
        }
    }
}

impl<'a> Linker<'a> {
    fn new(program: &'a SimdProgram, graph: &ReorgGraph, d: &Decisions) -> Linker<'a> {
        let shape = graph.shape();
        let mut l = Linker {
            program,
            load_links: Vec::new(),
            shift_known: Vec::new(),
            shift_runtime: Vec::new(),
            store_links: Vec::new(),
            c3_bin: Vec::new(),
            c3_un: Vec::new(),
            splat_const: Vec::new(),
            splat_param: Vec::new(),
            store_stmt: Vec::new(),
            reduction_stmts: Vec::new(),
            bounds: Vec::new(),
            prologue_d: Vec::new(),
            reuse_d: Vec::new(),
            epilogue_d: Vec::new(),
            reduction_d: Vec::new(),
        };
        for (s, stmt) in program.source().stmts().iter().enumerate() {
            l.store_stmt.push((stmt.target.array.index(), s));
            if stmt.is_reduction() {
                l.reduction_stmts.push(s);
            }
        }
        for (i, e) in d.placement.events.iter().enumerate() {
            let id = DecisionId::placement(i);
            match e {
                PlacementEvent::OffsetComputed { stmt, node, .. } => match graph.node(*node) {
                    RNode::Load { r } => push_to(&mut l.load_links, r.array.index(), id),
                    RNode::Splat { inv } => {
                        use simdize_ir::Invariant;
                        match inv {
                            Invariant::Const(c) => push_to(&mut l.splat_const, *c, id),
                            Invariant::Param(p) => push_to(&mut l.splat_param, p.index(), id),
                        }
                    }
                    RNode::Store { .. } => push_to(&mut l.store_links, *stmt, id),
                    _ => {}
                },
                PlacementEvent::DominantChosen { stmt, .. }
                | PlacementEvent::OptimalChosen { stmt, .. } => {
                    push_to(&mut l.store_links, *stmt, id);
                }
                PlacementEvent::ConstraintChecked {
                    stmt,
                    constraint,
                    node,
                    ..
                } => match constraint {
                    Constraint::C2 => push_to(&mut l.store_links, *stmt, id),
                    Constraint::C3 => match graph.node(*node) {
                        RNode::Op {
                            kind: VOpKind::Bin(op),
                            ..
                        } => push_to(&mut l.c3_bin, *op, id),
                        RNode::Op {
                            kind: VOpKind::Un(op),
                            ..
                        } => push_to(&mut l.c3_un, *op, id),
                        _ => {}
                    },
                },
                PlacementEvent::ShiftInserted { from, to, .. } => {
                    match (from.known(), to.known()) {
                        (Some(f), Some(t)) => {
                            l.shift_known.push((id, shift_amount(f, t, shape)));
                        }
                        _ => {
                            l.shift_runtime.push((id, runtime_arrays(&[*from, *to])));
                        }
                    }
                }
                PlacementEvent::ShiftElided { node, .. } => {
                    if let RNode::Load { r } = graph.node(*node) {
                        push_to(&mut l.load_links, r.array.index(), id);
                    }
                }
            }
        }
        for (i, e) in d.codegen.events.iter().enumerate() {
            let id = DecisionId::codegen(i);
            match e {
                CodegenEvent::BoundsChosen { .. } => l.bounds.push(id),
                CodegenEvent::ProloguePeeled { stmt, .. } => l.prologue_d.push((*stmt, id)),
                CodegenEvent::ReuseApplied { .. } => l.reuse_d.push(id),
                CodegenEvent::EpilogueForm { stmt, .. } => l.epilogue_d.push((*stmt, id)),
                CodegenEvent::ReductionEpilogue { stmt, .. } => l.reduction_d.push((*stmt, id)),
                CodegenEvent::PassApplied { .. } => {}
            }
        }
        l
    }

    fn section(
        &self,
        name: &'static str,
        header: String,
        insts: &[VInst],
        kind: SectionKind,
    ) -> AnnotatedSection {
        // Flatten guarded blocks so statement context can look across
        // guard boundaries.
        let mut flat: Vec<(usize, &VInst)> = Vec::new();
        fn flatten<'v>(insts: &'v [VInst], depth: usize, out: &mut Vec<(usize, &'v VInst)>) {
            for inst in insts {
                out.push((depth, inst));
                if let VInst::Guarded { body, .. } = inst {
                    flatten(body, depth + 1, out);
                }
            }
        }
        flatten(insts, 0, &mut flat);

        let mut annotated = Vec::with_capacity(flat.len());
        for (idx, (depth, inst)) in flat.iter().enumerate() {
            let stmt = self.stmt_context(&flat, idx);
            let mut links = self.links_for(inst, kind, stmt);
            links.sort();
            links.dedup();
            let text = match inst {
                VInst::Guarded { cond, .. } => format!("if {cond}:"),
                other => other.to_string(),
            };
            annotated.push(AnnotatedInst {
                text,
                depth: *depth,
                links,
            });
        }
        AnnotatedSection {
            name,
            header,
            insts: annotated,
        }
    }

    /// The statement an instruction belongs to: the statement of the
    /// nearest following store (stores close a statement's instruction
    /// run), falling back to the nearest preceding store, then to
    /// statement 0 for single-statement loops.
    fn stmt_context(&self, flat: &[(usize, &VInst)], idx: usize) -> Option<usize> {
        let stmt_of = |inst: &VInst| -> Option<usize> {
            match inst {
                VInst::StoreA { addr, .. } | VInst::StoreU { addr, .. } => {
                    self.store_stmt
                        .iter()
                        .find(|(a, _)| *a == addr.array.index())
                        .map(|(_, s)| *s)
                }
                _ => None,
            }
        };
        for (_, inst) in &flat[idx..] {
            if let Some(s) = stmt_of(inst) {
                return Some(s);
            }
        }
        for (_, inst) in flat[..idx].iter().rev() {
            if let Some(s) = stmt_of(inst) {
                return Some(s);
            }
        }
        if self.program.source().stmts().len() == 1 {
            Some(0)
        } else {
            None
        }
    }

    fn links_for(&self, inst: &VInst, kind: SectionKind, stmt: Option<usize>) -> Vec<DecisionId> {
        let mut links = match inst {
            VInst::LoadA { addr, .. } | VInst::LoadU { addr, .. } => {
                let array = addr.array.index();
                let mut ls = get_from(&self.load_links, &array);
                // A load of a *store-target* array is the read half of a
                // partial store (Figure 9) or a reduction accumulator
                // read — attribute it to the section's shaping decision.
                if let Some((_, s)) = self.store_stmt.iter().find(|(a, _)| *a == array) {
                    match kind {
                        SectionKind::Prologue => ls.extend(get_ids(&self.prologue_d, *s)),
                        SectionKind::Epilogue => {
                            ls.extend(get_ids(&self.epilogue_d, *s));
                            ls.extend(get_ids(&self.reduction_d, *s));
                        }
                        SectionKind::Body => ls.extend(get_from(&self.store_links, s)),
                    }
                }
                ls
            }
            VInst::StoreA { addr, .. } | VInst::StoreU { addr, .. } => {
                let array = addr.array.index();
                let s = self
                    .store_stmt
                    .iter()
                    .find(|(a, _)| *a == array)
                    .map(|(_, s)| *s);
                match (kind, s) {
                    (SectionKind::Prologue, Some(s)) => get_ids(&self.prologue_d, s),
                    (SectionKind::Epilogue, Some(s)) => {
                        let mut ls = get_ids(&self.epilogue_d, s);
                        ls.extend(get_ids(&self.reduction_d, s));
                        ls
                    }
                    (SectionKind::Body, Some(s)) => get_from(&self.store_links, &s),
                    _ => Vec::new(),
                }
            }
            VInst::ShiftPair { amt, .. } => {
                let mut ls = Vec::new();
                if let Some(k) = amt.as_const() {
                    for (id, a) in &self.shift_known {
                        if i64::from(*a) == k {
                            ls.push(*id);
                        }
                    }
                } else {
                    let mut arrays = Vec::new();
                    sexpr_arrays(amt, &mut arrays);
                    for (id, shift_arrays) in &self.shift_runtime {
                        if arrays.iter().any(|a| shift_arrays.contains(a)) {
                            ls.push(*id);
                        }
                    }
                    if ls.is_empty() {
                        ls.extend(self.shift_runtime.iter().map(|(id, _)| *id));
                    }
                }
                // Horizontal reduction folds rotate with power-of-two
                // amounts the placement phase never chose.
                if ls.is_empty() && kind == SectionKind::Epilogue {
                    ls.extend(self.reduction_ids(stmt));
                }
                ls
            }
            VInst::Splice { .. } => match (kind, stmt) {
                (SectionKind::Prologue, Some(s)) => get_ids(&self.prologue_d, s),
                (SectionKind::Epilogue, Some(s)) => {
                    let mut ls = get_ids(&self.epilogue_d, s);
                    ls.extend(get_ids(&self.reduction_d, s));
                    ls
                }
                (SectionKind::Prologue, None) => {
                    self.prologue_d.iter().map(|(_, id)| *id).collect()
                }
                (SectionKind::Epilogue, None) => {
                    self.epilogue_d.iter().map(|(_, id)| *id).collect()
                }
                _ => Vec::new(),
            },
            VInst::Perm { .. } => self.reduction_ids(stmt),
            VInst::SplatConst { value, .. } => {
                let mut ls = get_from(&self.splat_const, value);
                if ls.is_empty() {
                    // Reduction identities and fold masks are synthesized
                    // by codegen, not present in the source expression.
                    ls = match kind {
                        SectionKind::Prologue => self.reduction_prologue_ids(stmt),
                        _ => self.reduction_ids(stmt),
                    };
                }
                ls
            }
            VInst::SplatParam { param, .. } => get_from(&self.splat_param, &param.index()),
            VInst::Bin { op, .. } => {
                let mut ls = get_from(&self.c3_bin, op);
                // The vector accumulate of a reduction statement is
                // introduced by codegen, not by the expression graph.
                let reducers: Vec<usize> = self
                    .reduction_stmts
                    .iter()
                    .copied()
                    .filter(|s| self.program.source().stmts()[*s].reduction == Some(*op))
                    .collect();
                if !reducers.is_empty() {
                    for s in reducers {
                        match kind {
                            SectionKind::Epilogue => ls.extend(get_ids(&self.reduction_d, s)),
                            _ => ls.extend(get_ids(&self.prologue_d, s)),
                        }
                    }
                }
                ls
            }
            VInst::Un { op, .. } => get_from(&self.c3_un, op),
            VInst::Copy { .. } => self.reuse_d.clone(),
            VInst::Guarded { .. } => {
                // Runtime guards exist because an epilogue (or bound)
                // couldn't fold at compile time.
                let mut ls = match stmt {
                    Some(s) => {
                        let mut v = get_ids(&self.epilogue_d, s);
                        v.extend(get_ids(&self.reduction_d, s));
                        v
                    }
                    None => self.epilogue_d.iter().map(|(_, id)| *id).collect(),
                };
                ls.extend(self.bounds.clone());
                ls
            }
        };
        if links.is_empty() {
            // Structural fallback: the loop-shape decision.
            links = self.bounds.clone();
        }
        links
    }

    fn reduction_ids(&self, stmt: Option<usize>) -> Vec<DecisionId> {
        match stmt {
            Some(s) if get_ids(&self.reduction_d, s).is_empty() => {
                self.reduction_d.iter().map(|(_, id)| *id).collect()
            }
            Some(s) => get_ids(&self.reduction_d, s),
            None => self.reduction_d.iter().map(|(_, id)| *id).collect(),
        }
    }

    fn reduction_prologue_ids(&self, stmt: Option<usize>) -> Vec<DecisionId> {
        let stmts: Vec<usize> = match stmt {
            Some(s) if self.reduction_stmts.contains(&s) => vec![s],
            _ => self.reduction_stmts.clone(),
        };
        stmts
            .iter()
            .flat_map(|s| get_ids(&self.prologue_d, *s))
            .collect()
    }
}

fn get_ids(map: &[(usize, DecisionId)], key: usize) -> Vec<DecisionId> {
    map.iter()
        .filter(|(k, _)| *k == key)
        .map(|(_, id)| *id)
        .collect()
}
