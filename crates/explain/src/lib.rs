//! Explainable simdization: a decision-trace observability layer.
//!
//! This crate turns the typed event streams the pipeline records while
//! compiling a loop — shift-placement decisions from `simdize-reorg`,
//! code-generation decisions from `simdize-codegen`, trace-fusion
//! rewrites from `simdize-engine` — into a single report that shows
//! *why* the generated SIMD program looks the way it does:
//!
//! - every decision gets a stable id (`P<n>` placement, `G<n>` codegen,
//!   `F<n>` fusion) in one numbered list;
//! - every instruction of the generated program is back-linked to the
//!   decision(s) that produced it;
//! - the measured operations-per-datum is decomposed class by class
//!   against the paper's §5.3 analytic lower bound, attributing every
//!   excess operation to a named decision, with the row contributions
//!   summing exactly to the engine's measured total.
//!
//! Reports render three ways: plain text ([`render_text`]) for the
//! `simdize explain` subcommand, Markdown ([`render_markdown`]) for the
//! generated `docs/worked-examples/` pages, and versioned JSON
//! ([`render_json`], schema [`SCHEMA`]) for tools.
//!
//! A policy that *cannot* apply (e.g. eager-shift on a loop with
//! runtime-only alignments, paper §4.4) is not an error here: it yields
//! an [`ExplainReport::Inapplicable`] page explaining the violated
//! precondition, so the docs generator covers every loop × policy
//! combination. Non-unit-stride loops likewise yield an
//! [`ExplainReport::Strided`] page for the §7 gather/scatter path,
//! which bypasses stream placement entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod backlink;
mod decision;
mod json;
mod render;
mod report;

pub use accounting::{account, AccountRow, Accounting};
pub use backlink::{annotate, AnnotatedInst, AnnotatedSection};
pub use decision::{DecisionId, Decisions, Phase};
pub use json::{render_json, SCHEMA};
pub use render::{render_markdown, render_text};
pub use report::{
    ExplainError, ExplainReport, Explainer, InapplicableReport, LoopInfo, StreamReport,
    StridedReport,
};
